module Lm = Rhodos_txn.Lock_manager
module Counter = Rhodos_util.Stats.Counter

type t = {
  lm : Lm.t;
  counters : Counter.t;
  mutable last_cycle : int list option;
  mutable token : Rhodos_obs.Event_bus.token option;
}

let classify_suspect t txn =
  Counter.incr t.counters "suspects";
  let graph = Waits_for.of_edges (Lm.waits_for_edges t.lm) in
  match Waits_for.cycle_through graph txn with
  | Some cycle ->
    t.last_cycle <- Some cycle;
    Counter.incr t.counters "true_deadlocks"
  | None -> Counter.incr t.counters "false_aborts"

let attach lm =
  let t = { lm; counters = Counter.create (); last_cycle = None; token = None } in
  let token =
    Lm.subscribe lm (function
      | Lm.Ev_blocked _ -> Counter.incr t.counters "blocks_observed"
      | Lm.Ev_granted _ -> Counter.incr t.counters "grants_observed"
      | Lm.Ev_cancelled _ -> Counter.incr t.counters "cancels_observed"
      | Lm.Ev_released _ -> ()
      | Lm.Ev_suspected { txn } -> classify_suspect t txn)
  in
  t.token <- Some token;
  t

let detach t =
  match t.token with
  | Some token ->
    Lm.unsubscribe t.lm token;
    t.token <- None
  | None -> ()

let stats t = t.counters

let last_cycle t = t.last_cycle

let snapshot t = Waits_for.of_edges (Lm.waits_for_edges t.lm)

let check_now t = Waits_for.find_cycle (snapshot t)

let true_deadlocks t = Counter.get t.counters "true_deadlocks"

let false_aborts t = Counter.get t.counters "false_aborts"

let pp_stats fmt t =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun (name, v) -> Format.fprintf fmt "%-18s %d@ " name v)
    (Counter.to_list t.counters);
  Format.fprintf fmt "@]"
