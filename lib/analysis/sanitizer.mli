(** Race and protocol sanitizers over the deterministic simulator.

    An always-available dynamic-analysis layer: [create] installs the
    [Sim] monitor and from then on every cross-process interaction —
    spawn, wakeup, mailbox send/receive, ivar fill/read, semaphore
    acquire/release, instrumented {!Rhodos_sim.Sim.Cell} access — feeds
    two passes plus a set of protocol monitors:

    - {b happens-before (vector clocks)}: each process carries a
      {!Vclock.t}, ticked on its own events and joined across every
      synchronization edge (including lock grant/release once a lock
      manager is attached). Two accesses to the same [Data] cell from
      different processes, at least one a write, whose clocks are
      incomparable, are a data race ([v_kind = "data-race"]).
    - {b lockset (Eraser)}: per [Data] cell, the candidate set of locks
      held on {e every} access is narrowed from the moment a second
      process touches the cell; an empty candidate set once the cell is
      write-shared — and the triggering pair is not happens-before
      ordered — is reported ([v_kind = "lockset"]). Cells with the
      [Sync] role (lock tables, dedup maps, cache pools: lock-free by
      design in the cooperative simulator) are exempt from both
      pairwise passes; the protocol monitors cover them.
    - {b protocol monitors}, firing mid-run: Table 1 lock-mode
      compatibility on every grant ([{v "table1" v}]), grants after
      [release_all] ([{v "2pl" v}]), re-grant at a rank already held
      ([{v "double-acquire" v}]), release with nothing held
      ([{v "release-without-hold" v}]), ivar double fill
      ([{v "ivar-double-fill" v}]) and buffer-cache writeback of an
      evicted/replaced buffer ([{v "use-after-evict" v}]).

    Violations deduplicate per (object, kind): a racy cell hammered in
    a loop yields one report, not thousands. Emission never schedules
    simulator events, so an attached sanitizer leaves [Sim.run_digest]
    unchanged — and with no sanitizer attached the instrumentation is a
    single [None] match per touch point. *)

type access = {
  acc_time : float;
  acc_proc : int;
  acc_proc_name : string;
  acc_cell : int;
  acc_cell_name : string;
  acc_write : bool;
  acc_clock : Vclock.t;
      (** the process clock at the access (after its own tick) *)
  acc_locks : string list;
      (** items held (via bound transactions) at the access, as
          {!Rhodos_txn.Lock_manager.item_to_string}; sorted *)
  acc_span : (int * int) option;
      (** (trace id, span id) of the enclosing span, when a tracer was
          given and a span was open — ties the report to the obs
          timeline *)
}
(** One recorded access to a [Data]-role cell. *)

type violation = { v_kind : string; v_detail : string; v_time : float }
(** [v_kind] is one of ["data-race"], ["lockset"], ["table1"],
    ["2pl"], ["double-acquire"], ["release-without-hold"],
    ["ivar-double-fill"], ["use-after-evict"]. *)

type t

val create : ?tracer:Rhodos_obs.Trace.t -> Rhodos_sim.Sim.t -> t
(** Install the sanitizer as the world's [Sim] monitor. Create it
    before the structures it should observe, so cells register their
    names. At most one sanitizer per world (it owns the monitor
    slot). *)

val attach_lock_manager : t -> Rhodos_txn.Lock_manager.t -> unit
(** Subscribe to the lock manager: grants/releases become
    happens-before edges (the item's clock is joined into the grantee,
    the releaser's clock into its items), per-process locksets feed the
    Eraser pass, and the Table 1 / 2PL / double-acquire /
    release-without-hold monitors arm. Transactions are bound to the
    process that first blocks on or is immediately granted a lock
    (grants pumped by a releaser are attributed through that
    binding). *)

val attach_cache :
  t ->
  name:string ->
  key_to_string:('k -> string) ->
  'k Rhodos_cache.Buffer_cache.t ->
  unit
(** Arm the buffer-cache protocol monitor: a batch writeback entry
    persisting a buffer that was evicted or replaced mid-batch reports
    ["use-after-evict"]. *)

val feed_lock_event : t -> Rhodos_txn.Lock_manager.event -> unit
(** Drive the lock-protocol monitors with a synthetic event stream —
    the unit tests use this to exercise violations the real lock
    manager refuses to produce. Table 1 is checked against the
    sanitizer's own grant bookkeeping on this path (against
    [active_grants] on the {!attach_lock_manager} path). *)

val violations : t -> violation list
(** In emission order. *)

val accesses : t -> access list
(** Every recorded [Data]-cell access, in program order — the qcheck
    happens-before property reads the clocks off this. *)

val events_seen : t -> int
(** Simulator monitor events processed since [create] — the
    host-side work the sanitizer performed (clock ticks, joins,
    bookkeeping). The A5 overhead ablation reports this against the
    dispatch count; it is not part of any violation logic. *)

val detach : t -> unit
(** Clear the [Sim] monitor and every subscription made by the
    attach functions. Recorded violations and accesses survive. *)
