type violation = { file : string; line : int; rule : string; message : string }

(* ------------------------------------------------------------------ *)
(* Source preparation                                                  *)
(* ------------------------------------------------------------------ *)

(* Blank out comments (nesting, as OCaml's do), string literals and
   character literals, preserving newlines so line numbers survive.
   Type variables ('a) are distinguished from character literals by
   looking ahead for the closing quote. *)
let strip_comments_and_strings src =
  let n = String.length src in
  let out = Bytes.of_string src in
  let blank i = if Bytes.get out i <> '\n' then Bytes.set out i ' ' in
  let rec skip_string i =
    (* [i] points after the opening quote; returns index after the
       closing quote. *)
    if i >= n then i
    else
      match src.[i] with
      | '\\' ->
        blank i;
        if i + 1 < n then blank (i + 1);
        skip_string (i + 2)
      | '"' ->
        blank i;
        i + 1
      | _ ->
        blank i;
        skip_string (i + 1)
  in
  let rec skip_comment i depth =
    if i >= n then i
    else if i + 1 < n && src.[i] = '(' && src.[i + 1] = '*' then begin
      blank i;
      blank (i + 1);
      skip_comment (i + 2) (depth + 1)
    end
    else if i + 1 < n && src.[i] = '*' && src.[i + 1] = ')' then begin
      blank i;
      blank (i + 1);
      if depth = 1 then i + 2 else skip_comment (i + 2) (depth - 1)
    end
    else if src.[i] = '"' then begin
      blank i;
      skip_comment (skip_string (i + 1)) depth
    end
    else begin
      blank i;
      skip_comment (i + 1) depth
    end
  in
  let is_char_literal i =
    (* src.[i] = '\''; a character literal is 'x' or an escape. *)
    (i + 2 < n && src.[i + 1] <> '\\' && src.[i + 2] = '\'')
    || (i + 1 < n && src.[i + 1] = '\\')
  in
  let rec go i =
    if i >= n then ()
    else if i + 1 < n && src.[i] = '(' && src.[i + 1] = '*' then begin
      blank i;
      blank (i + 1);
      go (skip_comment (i + 2) 1)
    end
    else if src.[i] = '"' then begin
      blank i;
      go (skip_string (i + 1))
    end
    else if src.[i] = '\'' && is_char_literal i then begin
      (* Blank up to and including the closing quote. *)
      let j = ref (i + 1) in
      if !j < n && src.[!j] = '\\' then incr j;
      while !j < n && src.[!j] <> '\'' do
        incr j
      done;
      for k = i to min !j (n - 1) do
        blank k
      done;
      go (!j + 1)
    end
    else go (i + 1)
  in
  go 0;
  Bytes.to_string out

let line_of src pos =
  let line = ref 1 in
  for i = 0 to min pos (String.length src - 1) - 1 do
    if src.[i] = '\n' then incr line
  done;
  !line

(* ------------------------------------------------------------------ *)
(* Rule: forbidden identifiers (wall clock, ambient randomness)        *)
(* ------------------------------------------------------------------ *)

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '\''

(* Library code must live entirely in simulated time and seeded
   randomness, or runs stop being replayable. *)
let forbidden =
  [
    ("Unix.", "wall-clock/OS access; use Sim time instead");
    ("open Unix", "wall-clock/OS access; use Sim time instead");
    ("Sys.time", "wall clock; use Sim.now instead");
    ("Random.self_init", "unseeded randomness breaks replay; use Rng with a seed");
  ]

let find_forbidden ~file stripped =
  let vs = ref [] in
  List.iter
    (fun (pat, why) ->
      let plen = String.length pat in
      let limit = String.length stripped - plen in
      let i = ref 0 in
      while !i <= limit do
        if
          String.sub stripped !i plen = pat
          && (!i = 0 || not (is_ident_char stripped.[!i - 1]))
        then begin
          vs :=
            {
              file;
              line = line_of stripped !i;
              rule = "no-wall-clock";
              message = Printf.sprintf "%s: %s" (String.trim pat) why;
            }
            :: !vs;
          i := !i + plen
        end
        else incr i
      done)
    forbidden;
  List.rev !vs

(* ------------------------------------------------------------------ *)
(* Rule: host clocks only inside the profiler                          *)
(* ------------------------------------------------------------------ *)

(* Host time is allowed in exactly one library module: the profiler
   ([lib/obs/profiler.ml]), whose readings flow only into its own
   accumulators. Anywhere else a host clock can leak into simulated
   state, digests or event ordering and silently break replay — the
   general [no-wall-clock] rule catches the [Unix.]/[Sys.time] forms,
   but this rule names the hygiene contract explicitly and also
   covers the monotonic clock the profiler itself uses. *)
let host_clock_idents =
  [
    "Unix.gettimeofday"; "Unix.time"; "Unix.times"; "Sys.time";
    "Monotonic_clock.";
  ]

let find_host_clock ~file stripped =
  if Filename.basename file = "profiler.ml" then []
  else begin
    let n = String.length stripped in
    let vs = ref [] in
    List.iter
      (fun pat ->
        let plen = String.length pat in
        let i = ref 0 in
        while !i <= n - plen do
          if
            String.sub stripped !i plen = pat
            && (!i = 0 || not (is_ident_char stripped.[!i - 1]))
            && (pat.[plen - 1] = '.'
               || !i + plen >= n
               || not (is_ident_char stripped.[!i + plen]))
          then begin
            vs :=
              {
                file;
                line = line_of stripped !i;
                rule = "host-clock-hygiene";
                message =
                  Printf.sprintf
                    "%s: host clocks are confined to the profiler \
                     (lib/obs/profiler.ml); anywhere else host time can \
                     leak into simulated state or digests"
                    (String.trim pat);
              }
              :: !vs;
            i := !i + plen
          end
          else incr i
        done)
      host_clock_idents;
    List.rev !vs
  end

(* ------------------------------------------------------------------ *)
(* Rule: no direct printing from library code                          *)
(* ------------------------------------------------------------------ *)

(* Libraries must not write to stdout/stderr directly: output belongs
   to the [Logging] facade or an observability exporter, where the
   harness can capture, rate or silence it. [logging.ml] itself is the
   one sanctioned sink. *)
let print_idents =
  [
    "print_string"; "print_endline"; "print_newline"; "print_char";
    "print_int"; "print_float"; "Printf.printf"; "Printf.eprintf";
    "Format.printf"; "Format.eprintf"; "prerr_string"; "prerr_endline";
    "prerr_newline";
  ]

let find_direct_prints ~file stripped =
  if Filename.basename file = "logging.ml" then []
  else begin
    let vs = ref [] in
    List.iter
      (fun pat ->
        let plen = String.length pat in
        let limit = String.length stripped - plen in
        let i = ref 0 in
        while !i <= limit do
          if
            String.sub stripped !i plen = pat
            && (!i = 0 || not (is_ident_char stripped.[!i - 1]))
            && (!i + plen >= String.length stripped
               || not (is_ident_char stripped.[!i + plen]))
          then begin
            vs :=
              {
                file;
                line = line_of stripped !i;
                rule = "no-direct-print";
                message =
                  Printf.sprintf
                    "%s: library code must not print directly; go through \
                     Logging or an obs exporter"
                    pat;
              }
              :: !vs;
            i := !i + plen
          end
          else incr i
        done)
      print_idents;
    List.rev !vs
  end

(* ------------------------------------------------------------------ *)
(* Rule: no unseeded ambient randomness                                *)
(* ------------------------------------------------------------------ *)

(* The global [Random] state is process-wide and unseeded by the
   harness: any [Random.int]/[Random.bits] in library code injects
   nondeterminism the explorer and replay cannot reproduce. Seeded
   [Random.State] values (what [Rng] wraps) are fine. *)
let find_unseeded_random ~file stripped =
  let pat = "Random." in
  let plen = String.length pat in
  let n = String.length stripped in
  let vs = ref [] in
  let i = ref 0 in
  while !i <= n - plen do
    if
      String.sub stripped !i plen = pat
      && (!i = 0 || not (is_ident_char stripped.[!i - 1]))
    then begin
      let start = !i + plen in
      let j = ref start in
      while !j < n && is_ident_char stripped.[!j] do
        incr j
      done;
      let callee = String.sub stripped start (!j - start) in
      (* State is the seeded API; self_init is already flagged by
         no-wall-clock. *)
      if callee <> "State" && callee <> "self_init" && callee <> "" then
        vs :=
          {
            file;
            line = line_of stripped !i;
            rule = "no-unseeded-random";
            message =
              Printf.sprintf
                "Random.%s uses the unseeded global state; draw from a \
                 seeded Random.State (see Rng) so runs stay replayable"
                callee;
          }
          :: !vs;
      i := !j
    end
    else incr i
  done;
  List.rev !vs

(* ------------------------------------------------------------------ *)
(* Rule: Hashtbl iteration order must not feed output                  *)
(* ------------------------------------------------------------------ *)

(* [Hashtbl.iter]/[Hashtbl.fold] enumerate in bucket order, which
   depends on insertion history and the hash function — stable within
   a run but not a contract. A call whose body accumulates a list
   ([::] shortly after) and never sorts it hands that order to
   digests, observations or callers. Heuristic windows: a cons within
   [cons_window] chars of the call marks accumulation; any "sort"
   within [sort_window] chars after the call absolves it. *)
let find_unsorted_hashtbl_iteration ~file stripped =
  let cons_window = 400 and sort_window = 1200 in
  let n = String.length stripped in
  let has_sub lo hi needle =
    let nl = String.length needle in
    let hi = min hi (n - nl) in
    let rec go i = i <= hi && (String.sub stripped i nl = needle || go (i + 1)) in
    go lo
  in
  (* Like [has_sub], but the needle must start an identifier: "sorted"
     and "sort_uniq" absolve, an identifier merely containing "sort"
     ("resort_x") does not. *)
  let has_token_prefix lo hi needle =
    let nl = String.length needle in
    let hi = min hi (n - nl) in
    let rec go i =
      i <= hi
      && (((i = 0 || not (is_ident_char stripped.[i - 1]))
          && String.sub stripped i nl = needle)
         || go (i + 1))
    in
    go lo
  in
  let vs = ref [] in
  List.iter
    (fun pat ->
      let plen = String.length pat in
      let i = ref 0 in
      while !i <= n - plen do
        if
          String.sub stripped !i plen = pat
          && (!i = 0 || not (is_ident_char stripped.[!i - 1]))
          && not (is_ident_char stripped.[!i + plen])
        then begin
          let after = !i + plen in
          if
            has_sub after (after + cons_window) "::"
            (* the sort may also wrap the call — [List.sort compare
               (Hashtbl.fold ...)] — so look a little way back too *)
            && not
                 (has_token_prefix (max 0 (!i - 200)) (after + sort_window)
                    "sort")
          then
            vs :=
              {
                file;
                line = line_of stripped !i;
                rule = "hashtbl-iter-order";
                message =
                  Printf.sprintf
                    "%s accumulates a list in hash-bucket order with no \
                     sort in sight; sort before the result reaches a \
                     digest or caller"
                    pat;
              }
              :: !vs;
          i := after
        end
        else incr i
      done)
    [ "Hashtbl.iter"; "Hashtbl.fold" ];
  List.rev !vs

(* ------------------------------------------------------------------ *)
(* Rule: no catch-all try ... with _ ->                                *)
(* ------------------------------------------------------------------ *)

type marker = Block | Brace | Try | Match

(* A light token scan distinguishing the [with] of a [try] from the
   [with] of a [match] and from record update ([{ e with ... }]): a
   stack tracks open [try]/[match]/brace/block constructs, and a
   [with] resolves against the nearest one. A [try] whose first
   handler pattern is [_] is a catch-all: it swallows [Sim.Killed],
   [Assert_failure] and friends indiscriminately. *)
let find_catch_alls ~file stripped =
  let n = String.length stripped in
  let vs = ref [] in
  let stack = ref [] in
  let pop_until pred =
    let rec go = function
      | [] -> []
      | m :: rest -> if pred m then rest else go rest
    in
    stack := go !stack
  in
  (* Tokenize: identifiers/keywords and single chars. *)
  let i = ref 0 in
  let next_token () =
    while
      !i < n
      && (stripped.[!i] = ' ' || stripped.[!i] = '\n' || stripped.[!i] = '\t'
        || stripped.[!i] = '\r')
    do
      incr i
    done;
    if !i >= n then None
    else if is_ident_char stripped.[!i] then begin
      let start = !i in
      while !i < n && is_ident_char stripped.[!i] do
        incr i
      done;
      Some (`Ident (String.sub stripped start (!i - start), start))
    end
    else begin
      let c = stripped.[!i] in
      incr i;
      Some (`Char (c, !i - 1))
    end
  in
  let peek_handler_is_catch_all () =
    (* After a try's [with]: optional [|], then the pattern; flag when
       it is a lone [_]. *)
    let saved = !i in
    let tok = next_token () in
    let tok =
      match tok with Some (`Char ('|', _)) -> next_token () | t -> t
    in
    let result =
      match tok with
      | Some (`Ident ("_", _)) -> (
        match next_token () with
        | Some (`Char ('-', _)) when !i < n && stripped.[!i] = '>' -> true
        | Some (`Ident ("when", _)) -> true
        | _ -> false)
      | _ -> false
    in
    i := saved;
    result
  in
  let rec loop () =
    match next_token () with
    | None -> ()
    | Some tok ->
      (match tok with
      | `Ident (("begin" | "struct" | "sig" | "object"), _) ->
        stack := Block :: !stack
      | `Ident ("end", _) -> pop_until (fun m -> m = Block)
      | `Char ('(', _) -> stack := Block :: !stack
      | `Char (')', _) -> pop_until (fun m -> m = Block)
      | `Char ('{', _) -> stack := Brace :: !stack
      | `Char ('}', _) -> pop_until (fun m -> m = Brace)
      | `Ident ("try", _) -> stack := Try :: !stack
      | `Ident ("match", _) -> stack := Match :: !stack
      | `Ident ("with", pos) -> (
        match !stack with
        | Brace :: _ -> () (* record update: { e with ... } *)
        | _ ->
          let was_try =
            let rec find = function
              | [] -> None
              | Try :: _ -> Some true
              | Match :: _ -> Some false
              | (Block | Brace) :: rest -> find rest
            in
            find !stack
          in
          pop_until (fun m -> m = Try || m = Match);
          if was_try = Some true && peek_handler_is_catch_all () then
            vs :=
              {
                file;
                line = line_of stripped pos;
                rule = "no-catch-all";
                message =
                  "catch-all `try ... with _ ->` swallows Sim.Killed and \
                   unexpected errors; match the expected exceptions";
              }
              :: !vs)
      | _ -> ());
      loop ()
  in
  loop ();
  List.rev !vs

(* ------------------------------------------------------------------ *)
(* Rule: acquire/release pairing                                       *)
(* ------------------------------------------------------------------ *)

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* File-granularity pairing: a module that acquires must also contain
   a release path. Coarse, but catches the classic leak where a new
   call site takes a lock and no code can ever give it back. *)
let pairing_rules =
  [
    ("Semaphore.acquire", [ "Semaphore.release" ]);
    ("Mutex.lock", [ "Mutex.unlock" ]);
    ("Lock_manager.acquire", [ "Lock_manager.release_all"; "with_lock" ]);
    ("Lock_manager.try_acquire", [ "Lock_manager.release_all"; "with_lock" ]);
  ]

let find_unpaired ~file stripped =
  List.filter_map
    (fun (acq, rels) ->
      if contains stripped acq && not (List.exists (contains stripped) rels)
      then
        Some
          {
            file;
            line = 1;
            rule = "paired-release";
            message =
              Printf.sprintf "%s with no %s on any path" acq
                (String.concat " / " rels);
          }
      else None)
    pairing_rules

(* ------------------------------------------------------------------ *)
(* Rule: no module-level mutable state                                 *)
(* ------------------------------------------------------------------ *)

(* A module-level [ref]/[Hashtbl]/[Queue]/[Buffer] is state shared by
   every simulation world in the process: it leaks between runs,
   defeats the explorer's world-per-schedule isolation, and is
   invisible to the sanitizer (which only sees [Sim.Cell] accesses).
   State belongs in a record created per world. The allowlist is empty
   since the last two sanctioned globals were restructured away (the
   [Logging] registry now reuses [Logs.Src.list]; [Sim.Local] keys are
   identified by their extensible constructor, not a counter); the
   race pass's [unmonitored-shared-state] now owns this ground with
   real reachability, and this token rule survives only as the
   fallback for files the compiler frontend rejects. *)
let global_state_allowlist : string list = []

let mutable_creators =
  [ "ref "; "Hashtbl.create"; "Queue.create"; "Buffer.create" ]

let find_global_mutable_state ~file stripped =
  if List.mem (Filename.basename file) global_state_allowlist then []
  else begin
    let lines = String.split_on_char '\n' stripped in
    let arr = Array.of_list lines in
    let vs = ref [] in
    let starts_with p s =
      String.length s >= String.length p && String.sub s 0 (String.length p) = p
    in
    (* "in" as a token, not as a substring — else the "int" in a type
       annotation makes a module-level binding look like a local one *)
    let has_in_keyword line =
      let n = String.length line in
      let found = ref false in
      for i = 0 to n - 2 do
        if
          line.[i] = 'i'
          && line.[i + 1] = 'n'
          && (i = 0 || not (is_ident_char line.[i - 1]))
          && (i + 2 >= n || not (is_ident_char line.[i + 2]))
        then found := true
      done;
      !found
    in
    let indent_of line =
      let i = ref 0 in
      while !i < String.length line && line.[!i] = ' ' do
        incr i
      done;
      !i
    in
    (* A binding whose [in] sits on a later line is still local:
       continuation lines (deeper indent) may carry it anywhere, and
       the first line back at the binding's indent closes it when it
       leads with an [in] token. Without this lookahead a multi-line
       [let x =\n  ref 0\nin] inside a function reads like module
       state. *)
    let in_on_later_line idx indent =
      let res = ref false in
      let scanning = ref true in
      let j = ref (idx + 1) in
      while !scanning && !j < Array.length arr do
        let l = arr.(!j) in
        if String.trim l = "" then incr j
        else if indent_of l > indent then
          if has_in_keyword l then begin
            res := true;
            scanning := false
          end
          else incr j
        else begin
          let t = String.trim l in
          if t = "in" || starts_with "in " t then res := true;
          scanning := false
        end
      done;
      !res
    in
    Array.iteri
      (fun idx line ->
        let indent = indent_of line in
        let body = String.trim line in
        if
          indent <= 2
          && starts_with "let " body
          && (not (has_in_keyword line))
          && not (in_on_later_line idx indent)
        then
          match String.index_opt body '=' with
          | Some eq ->
            let binder = String.sub body 4 (eq - 4) in
            let parameterized =
              match
                (String.index_opt binder '(', String.index_opt binder ':')
              with
              | Some p, Some c -> p < c (* "(" before ":" = a parameter *)
              | Some _, None -> true
              | None, _ -> false
            in
            let rhs =
              let r = String.trim (String.sub body (eq + 1)
                                     (String.length body - eq - 1)) in
              if r <> "" then r
              else if idx + 1 < Array.length arr then String.trim arr.(idx + 1)
              else ""
            in
            if (not parameterized)
               && List.exists (fun c -> starts_with c rhs) mutable_creators
            then
              vs :=
                {
                  file;
                  line = idx + 1;
                  rule = "global-mutable-state";
                  message =
                    "module-level mutable state is shared across simulation \
                     worlds and invisible to the sanitizer; move it into a \
                     per-world record (or a Sim.Cell)";
                }
                :: !vs
          | None -> ())
      arr;
    List.rev !vs
  end

(* ------------------------------------------------------------------ *)
(* Rule: no raw access to cell-wrapped shared state                    *)
(* ------------------------------------------------------------------ *)

(* Fields migrated onto [Sim.Cell] must stay behind [Cell.get]/
   [Cell.update]: a raw [Hashtbl.replace t.field ...] or [t.field <-]
   mutates the payload without the access ever reaching the monitor,
   silently blinding the race passes. One entry per instrumented
   field; extend it when migrating more state. *)
let instrumented_fields =
  [
    ("file_agent.ml", [ "inflight"; "prefetched" ]);
    ("buffer_cache.ml", [ "buffers" ]);
    ("lock_manager.ml",
     [ "released"; "record_table"; "page_table"; "file_table" ]);
  ]

let find_raw_shared_cell ~file stripped =
  match List.assoc_opt (Filename.basename file) instrumented_fields with
  | None -> []
  | Some fields ->
    let n = String.length stripped in
    let vs = ref [] in
    List.iter
      (fun fld ->
        let pat = "t." ^ fld in
        let plen = String.length pat in
        let i = ref 0 in
        while !i <= n - plen do
          if
            String.sub stripped !i plen = pat
            && (!i = 0 || not (is_ident_char stripped.[!i - 1]))
            && (!i + plen >= n || not (is_ident_char stripped.[!i + plen]))
          then begin
            (* raw mutation after: "<-" or ":=" *)
            let j = ref (!i + plen) in
            while !j < n && (stripped.[!j] = ' ' || stripped.[!j] = '\n') do
              incr j
            done;
            let mutated_after =
              !j + 1 < n
              && ((stripped.[!j] = '<' && stripped.[!j + 1] = '-')
                 || (stripped.[!j] = ':' && stripped.[!j + 1] = '='))
            in
            (* raw Hashtbl op before: an identifier path ending just
               before the field that starts with "Hashtbl." *)
            let k = ref (!i - 1) in
            while
              !k >= 0 && (stripped.[!k] = ' ' || stripped.[!k] = '\n')
            do
              decr k
            done;
            let e = !k in
            while !k >= 0 && (is_ident_char stripped.[!k] || stripped.[!k] = '.')
            do
              decr k
            done;
            let tok = String.sub stripped (!k + 1) (e - !k) in
            let hashtbl_before =
              String.length tok > 8 && String.sub tok 0 8 = "Hashtbl."
            in
            if mutated_after || hashtbl_before then
              vs :=
                {
                  file;
                  line = line_of stripped !i;
                  rule = "raw-shared-cell";
                  message =
                    Printf.sprintf
                      "raw access to instrumented field %s bypasses the \
                       sanitizer; go through Sim.Cell.get/update (peek for \
                       analysis-only reads)"
                      pat;
                }
                :: !vs;
            i := !i + plen
          end
          else incr i
        done)
      fields;
    List.rev !vs

(* ------------------------------------------------------------------ *)
(* Rule: the event-loop hot path stays allocation-free                 *)
(* ------------------------------------------------------------------ *)

(* The dispatch path earned its flat layout: [Sim.dispatch], [step]
   and [run] must stick to the allocation-free queue accessors
   ([unsafe_min_prio], [pop_into], [is_empty], [length]). The
   option/list-returning API ([pop], [peek], [min_prio], [ready],
   [pop_nth], [drain], [ready_count]) allocates or scans per call and
   belongs to the analysis/explorer paths ([controlled_step]), not the
   per-event loop. The rule is a token scan over the top-level
   let-regions of those three functions in sim.ml; a raw source line
   carrying a [static-ok: reason] comment is exempt, for a reviewed
   use that the scan cannot judge. *)
let hot_path_functions = [ "dispatch"; "step"; "run" ]

let hot_path_forbidden =
  [
    "Prio_queue.pop"; "Prio_queue.pop_nth"; "Prio_queue.peek";
    "Prio_queue.min_prio"; "Prio_queue.ready"; "Prio_queue.ready_count";
    "Prio_queue.drain";
  ]

let find_hot_path_alloc ~file ~raw stripped =
  if Filename.basename file <> "sim.ml" then []
  else begin
    let n = String.length stripped in
    let raw_lines = Array.of_list (String.split_on_char '\n' raw) in
    let line_exempt ln =
      ln - 1 >= 0
      && ln - 1 < Array.length raw_lines
      && contains raw_lines.(ln - 1) "static-ok:"
    in
    (* Top-level let-regions: a column-0 [let [rec] <name>]; the region
       runs to the next column-0 [let]. *)
    let is_line_start i = i = 0 || stripped.[i - 1] = '\n' in
    let ident_at i =
      let j = ref i in
      while !j < n && is_ident_char stripped.[!j] do
        incr j
      done;
      (String.sub stripped i (!j - i), !j)
    in
    let region_starts = ref [] in
    let i = ref 0 in
    while !i <= n - 4 do
      (if is_line_start !i && String.sub stripped !i 4 = "let " then begin
         let name, j = ident_at (!i + 4) in
         let name, _ =
           if name = "rec" then
             let k = ref j in
             let () =
               while !k < n && stripped.[!k] = ' ' do
                 incr k
               done
             in
             ident_at !k
           else (name, j)
         in
         region_starts := (!i, name) :: !region_starts
       end);
      incr i
    done;
    let regions = List.rev !region_starts in
    let rec bounds = function
      | [] -> []
      | (start, name) :: rest ->
        let stop = match rest with (s, _) :: _ -> s | [] -> n in
        if List.mem name hot_path_functions then (name, start, stop) :: bounds rest
        else bounds rest
    in
    let vs = ref [] in
    List.iter
      (fun (fname, start, stop) ->
        List.iter
          (fun pat ->
            let plen = String.length pat in
            let i = ref start in
            while !i <= stop - plen do
              if
                String.sub stripped !i plen = pat
                && (!i = 0 || not (is_ident_char stripped.[!i - 1]))
                && (!i + plen >= n || not (is_ident_char stripped.[!i + plen]))
              then begin
                let ln = line_of stripped !i in
                if not (line_exempt ln) then
                  vs :=
                    {
                      file;
                      line = ln;
                      rule = "hot-path-alloc";
                      message =
                        Printf.sprintf
                          "%s in Sim.%s: the event loop must use the \
                           allocation-free queue accessors (unsafe_min_prio, \
                           pop_into, is_empty); annotate the line with \
                           (* static-ok: reason *) if this use is reviewed"
                          pat fname;
                    }
                    :: !vs;
                i := !i + plen
              end
              else incr i
            done)
          hot_path_forbidden)
      (bounds regions);
    List.rev !vs
  end

(* ------------------------------------------------------------------ *)
(* Rule: every bench experiment registers a JSON emitter               *)
(* ------------------------------------------------------------------ *)

(* Experiments feed the committed BENCH_*.json perf record; one that
   never calls [Json_out.register] silently drops out of it, and a
   perf regression there goes unnoticed. *)
let find_unregistered_experiment ~file stripped =
  let base = Filename.basename file in
  if
    String.length base >= 4
    && String.sub base 0 4 = "exp_"
    && not (contains stripped "Json_out.register")
  then
    [
      {
        file;
        line = 1;
        rule = "bench-emitter";
        message =
          "experiment module never calls Json_out.register: its metrics \
           are missing from the BENCH_*.json perf record";
      };
    ]
  else []

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

(* [Library] is the strict default for lib/. [Bench] covers bench/:
   experiments print their tables directly and are executables (no
   .mli), so those two rules are off; instead every exp_*.ml must
   register with the JSON perf record. *)
type profile = Library | Bench

let lint_source ?(profile = Library) ~file src =
  let stripped = strip_comments_and_strings src in
  find_forbidden ~file stripped
  @ (match profile with
    | Library ->
      find_host_clock ~file stripped
      @ find_direct_prints ~file stripped
      @ find_unseeded_random ~file stripped
      @ find_unsorted_hashtbl_iteration ~file stripped
      @ find_global_mutable_state ~file stripped
      @ find_raw_shared_cell ~file stripped
      @ find_hot_path_alloc ~file ~raw:src stripped
    | Bench -> find_unregistered_experiment ~file stripped)
  @ find_catch_alls ~file stripped
  @ find_unpaired ~file stripped

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let rec ml_files dir =
  match Sys.readdir dir with
  | entries ->
    Array.sort compare entries;
    Array.fold_left
      (fun acc entry ->
        let path = Filename.concat dir entry in
        if Sys.is_directory path then
          if entry = "_build" || String.length entry > 0 && entry.[0] = '.'
          then acc
          else acc @ ml_files path
        else if Filename.check_suffix entry ".ml" then acc @ [ path ]
        else acc)
      [] entries
  | exception Sys_error _ -> []

let missing_mli path =
  let mli = path ^ "i" in
  if Sys.file_exists mli then []
  else
    [
      {
        file = path;
        line = 1;
        rule = "missing-mli";
        message = "library module has no .mli interface";
      };
    ]

let lint_dir ?(profile = Library) dir =
  List.concat_map
    (fun path ->
      (match profile with Library -> missing_mli path | Bench -> [])
      @ lint_source ~profile ~file:path (read_file path))
    (ml_files dir)

let pp_violation fmt v =
  Format.fprintf fmt "%s:%d: [%s] %s" v.file v.line v.rule v.message
