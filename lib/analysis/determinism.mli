(** Determinism sanitizer for the discrete-event simulator.

    The whole reproduction depends on [Sim] runs being replayable:
    the same program must dispatch the same events in the same order
    every time, and its {e observable results} must not depend on the
    arbitrary order in which same-time events fire. This module checks
    both by running a scenario three times:

    - twice with the default FIFO tie-breaking — the two run digests
      ({!Rhodos_sim.Sim.run_digest}) must match, or something
      nondeterministic (wall clock, [Random.self_init], ...) leaked
      into the simulation;
    - once with perturbed (LIFO) tie-breaking — the observation
      function must return the same value, or the scenario's results
      depend on schedule order among same-time events.

    The FIFO run is also audited for leaked processes: waiters never
    resumed by end of run and kills never delivered.

    With [~schedules:n] the check additionally delegates to the
    explorer ({!Explore.enumerate_schedules}): up to [n] distinct
    same-time interleavings are executed and every observation must
    match the FIFO run's — a much stronger order-independence check
    than the single LIFO perturbation. The default remains the cheap
    3-run mode. *)

type run = {
  digest : int;
  dispatched : int;
  observation : string;
  audit : Rhodos_sim.Sim.audit;
}

type report = {
  fifo : run;
  fifo_repeat : run;
  lifo : run;
  digest_repeatable : bool;
      (** two FIFO runs produced identical digests and observations *)
  order_independent : bool;
      (** the LIFO run's observation matches the FIFO run's *)
  leaked : string list;
      (** parked + undelivered-kill processes left in the FIFO run *)
  explored : int;
      (** explorer-enumerated schedules executed ([0] in 3-run mode) *)
  divergent : (int list * string) option;
      (** first explored schedule whose observation differed from the
          FIFO run's, with that observation *)
}

val run_twice_compare :
  ?until:float ->
  ?schedules:int ->
  setup:(Rhodos_sim.Sim.t -> unit) ->
  observe:(Rhodos_sim.Sim.t -> string) ->
  unit ->
  report
(** [setup] builds the world (spawns processes, ...) on a fresh
    simulator; [observe] extracts the run's observable result as a
    string after the run completes. Both are called once per run and
    must not retain state across calls. [schedules] (default 0) runs
    up to that many explorer-enumerated interleavings on top of the
    three baseline runs. *)

val ok : report -> bool
(** Repeatable, order-independent (including across any explored
    schedules), and leak-free. *)

val pp_report : Format.formatter -> report -> unit
