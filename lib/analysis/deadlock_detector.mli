(** Waits-for-graph deadlock detection over a live [Lock_manager].

    The paper's section 6.4 resolves deadlock by suspicion alone: a
    contested lease break aborts the holder whether or not a deadlock
    exists, and the paper admits the scheme "may abort long
    transactions falsely". Attaching a detector makes that admission
    measurable: every lease-break suspicion is classified against the
    actual waits-for graph as a {e true deadlock} (the suspected
    transaction lies on a cycle) or a {e false abort} (it does not),
    with counters exported for the experiment harness. *)

type t

val attach : Rhodos_txn.Lock_manager.t -> t
(** Subscribe the detector to the lock manager's event bus. Other
    subscribers (e.g. a request tracer) are unaffected — the detector
    holds its own unsubscribe token. The lock manager's behaviour is
    unchanged: the detector only observes. *)

val detach : t -> unit
(** Unsubscribe this detector (idempotent); other subscribers keep
    receiving events. *)

val snapshot : t -> Waits_for.t
(** The current waits-for graph. *)

val check_now : t -> int list option
(** Any cycle in the current graph (an on-demand deadlock check,
    independent of the timeout scheme). *)

val last_cycle : t -> int list option
(** The cycle found by the most recent true-deadlock
    classification. *)

val true_deadlocks : t -> int

val false_aborts : t -> int

val stats : t -> Rhodos_util.Stats.Counter.t
(** Counters: ["suspects"], ["true_deadlocks"], ["false_aborts"],
    ["blocks_observed"], ["grants_observed"], ["cancels_observed"]. *)

val pp_stats : Format.formatter -> t -> unit
