module Sim = Rhodos_sim.Sim
module Prio_queue = Rhodos_util.Prio_queue

type run = {
  digest : int;
  dispatched : int;
  observation : string;
  audit : Sim.audit;
}

type report = {
  fifo : run;
  fifo_repeat : run;
  lifo : run;
  digest_repeatable : bool;
  order_independent : bool;
  leaked : string list;
  explored : int;
  divergent : (int list * string) option;
}

(* Run construction is shared with the explorer: one tracked world per
   run, built fresh by [setup], summarized by [observe]. *)
let run_one ~tie ?until ~setup ~observe () =
  let r = Explore.exec ?until ~tie ~setup ~observe () in
  {
    digest = r.Explore.digest;
    dispatched = r.Explore.dispatched;
    observation = r.Explore.observation;
    audit = r.Explore.audit;
  }

let run_twice_compare ?until ?(schedules = 0) ~setup ~observe () =
  let go tie = run_one ~tie ?until ~setup ~observe () in
  let fifo = go Prio_queue.Fifo in
  let fifo_repeat = go Prio_queue.Fifo in
  let lifo = go Prio_queue.Lifo in
  let explored_runs, _complete =
    if schedules <= 0 then ([], true)
    else
      Explore.enumerate_schedules ?until ~max_depth:8 ~max_runs:schedules
        ~setup ~observe ()
  in
  let divergent =
    List.find_map
      (fun (r : Explore.run) ->
        if r.Explore.observation = fifo.observation then None
        else Some (r.Explore.schedule, r.Explore.observation))
      explored_runs
  in
  {
    fifo;
    fifo_repeat;
    lifo;
    digest_repeatable =
      fifo.digest = fifo_repeat.digest
      && fifo.observation = fifo_repeat.observation;
    order_independent = fifo.observation = lifo.observation;
    leaked = fifo.audit.Sim.parked @ fifo.audit.Sim.undelivered_kills;
    explored = List.length explored_runs;
    divergent;
  }

let ok r =
  r.digest_repeatable && r.order_independent && r.leaked = []
  && r.divergent = None

let pp_report fmt r =
  Format.fprintf fmt
    "@[<v>digest repeatable : %b (%#x / %#x)@ order independent : %b@ \
     events dispatched : %d fifo / %d lifo@ schedules explored: %d@ leaked \
     processes  : %s@]"
    r.digest_repeatable r.fifo.digest r.fifo_repeat.digest r.order_independent
    r.fifo.dispatched r.lifo.dispatched r.explored
    (match r.leaked with [] -> "none" | l -> String.concat ", " l);
  if not r.order_independent then
    Format.fprintf fmt
      "@ @[<v>fifo observation:@   %s@ lifo observation:@   %s@]"
      r.fifo.observation r.lifo.observation;
  match r.divergent with
  | None -> ()
  | Some (schedule, obs) ->
    Format.fprintf fmt
      "@ @[<v>divergent schedule [%s] observation:@   %s@]"
      (Explore.schedule_to_string schedule)
      obs
