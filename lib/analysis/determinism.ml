module Sim = Rhodos_sim.Sim
module Prio_queue = Rhodos_util.Prio_queue

type run = {
  digest : int;
  dispatched : int;
  observation : string;
  audit : Sim.audit;
}

type report = {
  fifo : run;
  fifo_repeat : run;
  lifo : run;
  digest_repeatable : bool;
  order_independent : bool;
  leaked : string list;
}

let run_one ~tie ?until ~setup ~observe () =
  let sim = Sim.create ~tie_break:tie ~track:true () in
  setup sim;
  Sim.run ?until sim;
  {
    digest = Sim.run_digest sim;
    dispatched = Sim.events_dispatched sim;
    observation = observe sim;
    audit = Sim.audit sim;
  }

let run_twice_compare ?until ~setup ~observe () =
  let go tie = run_one ~tie ?until ~setup ~observe () in
  let fifo = go Prio_queue.Fifo in
  let fifo_repeat = go Prio_queue.Fifo in
  let lifo = go Prio_queue.Lifo in
  {
    fifo;
    fifo_repeat;
    lifo;
    digest_repeatable =
      fifo.digest = fifo_repeat.digest
      && fifo.observation = fifo_repeat.observation;
    order_independent = fifo.observation = lifo.observation;
    leaked = fifo.audit.Sim.parked @ fifo.audit.Sim.undelivered_kills;
  }

let ok r = r.digest_repeatable && r.order_independent && r.leaked = []

let pp_report fmt r =
  Format.fprintf fmt
    "@[<v>digest repeatable : %b (%#x / %#x)@ order independent : %b@ \
     events dispatched : %d fifo / %d lifo@ leaked processes  : %s@]"
    r.digest_repeatable r.fifo.digest r.fifo_repeat.digest r.order_independent
    r.fifo.dispatched r.lifo.dispatched
    (match r.leaked with [] -> "none" | l -> String.concat ", " l);
  if not r.order_independent then
    Format.fprintf fmt
      "@ @[<v>fifo observation:@   %s@ lifo observation:@   %s@]"
      r.fifo.observation r.lifo.observation
