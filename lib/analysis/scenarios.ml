module Sim = Rhodos_sim.Sim
module Lm = Rhodos_txn.Lock_manager

type deadlock_outcome = {
  true_deadlocks : int;
  false_aborts : int;
  cycle : int list option;
  aborted : int list;
}

(* A lock manager whose suspect callback aborts the transaction the
   way the transaction service does: cancel its waits, release its
   grants, remember who died. *)
let lm_with_aborts ?(config = Lm.default_config) sim =
  let aborted = ref [] in
  let holder = ref None in
  let on_suspect ~txn =
    match !holder with
    | None -> ()
    | Some lm ->
      if not (List.mem txn !aborted) then begin
        aborted := txn :: !aborted;
        Lm.cancel_waits lm ~txn;
        Lm.release_all lm ~txn
      end
  in
  let lm = Lm.create ~config ~sim ~on_suspect () in
  holder := Some lm;
  (lm, aborted)

let outcome det aborted =
  {
    true_deadlocks = Deadlock_detector.true_deadlocks det;
    false_aborts = Deadlock_detector.false_aborts det;
    cycle = Deadlock_detector.last_cycle det;
    aborted = List.sort compare !aborted;
  }

(* T1 takes A, T2 takes B; then T1 wants B and T2 wants A. Neither
   can proceed: a genuine 2-cycle. The section 6.4 lease break fires
   on the contested locks, the detector sees the cycle, and the abort
   of either victim unblocks the other. *)
let two_cycle () =
  let sim = Sim.create ~track:true () in
  let lm, aborted = lm_with_aborts sim in
  let det = Deadlock_detector.attach lm in
  let a = Lm.File_item 1 and b = Lm.File_item 2 in
  ignore
    (Sim.spawn ~name:"T1" sim (fun () ->
         Lm.acquire lm ~txn:1 a Lm.Iwrite;
         Sim.sleep sim 10.;
         (match Lm.acquire lm ~txn:1 b Lm.Iwrite with
         | () -> ()
         | exception Lm.Wait_cancelled _ -> ());
         Lm.release_all lm ~txn:1));
  ignore
    (Sim.spawn ~name:"T2" sim (fun () ->
         Lm.acquire lm ~txn:2 b Lm.Iwrite;
         Sim.sleep sim 10.;
         (match Lm.acquire lm ~txn:2 a Lm.Iwrite with
         | () -> ()
         | exception Lm.Wait_cancelled _ -> ());
         Lm.release_all lm ~txn:2));
  Sim.run sim;
  outcome det aborted

(* T1 holds the lock and simply runs long — it waits for nobody. T2
   queues behind it, the lease break suspects T1, and the detector
   finds no cycle: one of the paper's admitted false aborts of a
   long-running transaction. *)
let long_transaction_false_abort () =
  let sim = Sim.create ~track:true () in
  let lm, aborted = lm_with_aborts sim in
  let det = Deadlock_detector.attach lm in
  let a = Lm.File_item 1 in
  ignore
    (Sim.spawn ~name:"long-T1" sim (fun () ->
         Lm.acquire lm ~txn:1 a Lm.Iwrite;
         (* Far longer than the LT lease; the transaction is healthy,
            just slow. *)
         Sim.sleep sim (Lm.default_config.Lm.lt_ms *. 20.);
         Lm.release_all lm ~txn:1));
  ignore
    (Sim.spawn_at ~name:"T2" sim ~at:10. (fun () ->
         (match Lm.acquire lm ~txn:2 a Lm.Iwrite with
         | () -> ()
         | exception Lm.Wait_cancelled _ -> ());
         Lm.release_all lm ~txn:2));
  Sim.run sim;
  outcome det aborted
