module Sim = Rhodos_sim.Sim
module Lm = Rhodos_txn.Lock_manager
module Fa = Rhodos_agent.File_agent
module Sc = Rhodos_agent.Service_conn
module Cache = Rhodos_cache.Buffer_cache
module Fit = Rhodos_file.Fit
module Trace = Rhodos_obs.Trace

type deadlock_outcome = {
  true_deadlocks : int;
  false_aborts : int;
  cycle : int list option;
  aborted : int list;
}

(* A lock manager whose suspect callback aborts the transaction the
   way the transaction service does: cancel its waits, release its
   grants, remember who died. *)
let lm_with_aborts ?(config = Lm.default_config) sim =
  let aborted = ref [] in
  let holder = ref None in
  let on_suspect ~txn =
    match !holder with
    | None -> ()
    | Some lm ->
      if not (List.mem txn !aborted) then begin
        aborted := txn :: !aborted;
        Lm.cancel_waits lm ~txn;
        Lm.release_all lm ~txn
      end
  in
  let lm = Lm.create ~config ~sim ~on_suspect () in
  holder := Some lm;
  (lm, aborted)

let outcome det aborted =
  {
    true_deadlocks = Deadlock_detector.true_deadlocks det;
    false_aborts = Deadlock_detector.false_aborts det;
    cycle = Deadlock_detector.last_cycle det;
    aborted = List.sort compare !aborted;
  }

(* T1 takes A, T2 takes B; then T1 wants B and T2 wants A. Neither
   can proceed: a genuine 2-cycle. The section 6.4 lease break fires
   on the contested locks, the detector sees the cycle, and the abort
   of either victim unblocks the other. *)
let two_cycle () =
  let sim = Sim.create ~track:true () in
  let lm, aborted = lm_with_aborts sim in
  let det = Deadlock_detector.attach lm in
  let a = Lm.File_item 1 and b = Lm.File_item 2 in
  ignore
    (Sim.spawn ~name:"T1" sim (fun () ->
         Lm.acquire lm ~txn:1 a Lm.Iwrite;
         (* static-ok: leak-on-raise seeded deadlock model: holding the grant across the sleep is the contention under study; the detector's abort path releases via release_all *)
         Sim.sleep sim 10.;
         (match Lm.acquire lm ~txn:1 b Lm.Iwrite with
         | () -> ()
         | exception Lm.Wait_cancelled _ -> ());
         Lm.release_all lm ~txn:1));
  ignore
    (Sim.spawn ~name:"T2" sim (fun () ->
         Lm.acquire lm ~txn:2 b Lm.Iwrite;
         Sim.sleep sim 10.;
         (match Lm.acquire lm ~txn:2 a Lm.Iwrite with
         | () -> ()
         | exception Lm.Wait_cancelled _ -> ());
         Lm.release_all lm ~txn:2));
  Sim.run sim;
  outcome det aborted

(* T1 holds the lock and simply runs long — it waits for nobody. T2
   queues behind it, the lease break suspects T1, and the detector
   finds no cycle: one of the paper's admitted false aborts of a
   long-running transaction. *)
let long_transaction_false_abort () =
  let sim = Sim.create ~track:true () in
  let lm, aborted = lm_with_aborts sim in
  let det = Deadlock_detector.attach lm in
  let a = Lm.File_item 1 in
  ignore
    (Sim.spawn ~name:"long-T1" sim (fun () ->
         Lm.acquire lm ~txn:1 a Lm.Iwrite;
         (* Far longer than the LT lease; the transaction is healthy,
            just slow. *)
         (* static-ok: leak-on-raise seeded lease-break model: the long hold across the sleep is the false-abort trigger under study; release_all runs on the survival path *)
         Sim.sleep sim (Lm.default_config.Lm.lt_ms *. 20.);
         Lm.release_all lm ~txn:1));
  ignore
    (Sim.spawn_at ~name:"T2" sim ~at:10. (fun () ->
         (match Lm.acquire lm ~txn:2 a Lm.Iwrite with
         | () -> ()
         | exception Lm.Wait_cancelled _ -> ());
         Lm.release_all lm ~txn:2));
  Sim.run sim;
  outcome det aborted

(* ------------------------------------------------------------------ *)
(* Explorer seed scenarios                                             *)
(* ------------------------------------------------------------------ *)

exception Injected_crash

let invariant name check = { Explore.inv_name = name; inv_check = check }

(* A fake remote file service behind a [Service_conn.fs_conn]: a
   hashtable of byte buffers, every call costing one simulated RPC.
   The sleeps are what create same-time ready sets — the choice points
   the explorer drives. *)
let fake_fs_server sim =
  let store : (int, bytes ref) Hashtbl.t = Hashtbl.create 8 in
  let names : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let next = ref 0 in
  let pwrites = ref 0 in
  let crash_at = ref None in
  let rpc () = Sim.sleep sim 1.0 in
  let contents id =
    match Hashtbl.find_opt store id with
    | Some r -> r
    | None ->
      let r = ref Bytes.empty in
      Hashtbl.replace store id r;
      r
  in
  let ensure_len r len =
    if Bytes.length !r < len then begin
      let nb = Bytes.make len '\000' in
      Bytes.blit !r 0 nb 0 (Bytes.length !r);
      r := nb
    end
  in
  let fit_of id =
    let f = Fit.fresh ~now:0. Fit.Basic Fit.File_level in
    f.Fit.size <- Bytes.length !(contents id);
    f
  in
  let conn =
    {
      Sc.resolve =
        (fun an ->
          rpc ();
          let path =
            match List.assoc_opt "path" an with
            | Some p -> p
            | None -> invalid_arg "fake_fs_server: no path attribute"
          in
          match Hashtbl.find_opt names path with
          | Some id -> id
          | None -> invalid_arg ("fake_fs_server: unbound " ^ path));
      bind =
        (fun ~path ~file_id ->
          rpc ();
          Hashtbl.replace names path file_id);
      unbind =
        (fun path ->
          rpc ();
          Hashtbl.remove names path);
      mkdir = (fun _ -> rpc ());
      create_file =
        (fun () ->
          rpc ();
          let id = !next in
          incr next;
          Hashtbl.replace store id (ref Bytes.empty);
          id);
      open_file =
        (fun id ->
          rpc ();
          fit_of id);
      close_file = (fun _ -> rpc ());
      delete_file =
        (fun id ->
          rpc ();
          Hashtbl.remove store id);
      pread =
        (fun id ~off ~len ->
          rpc ();
          let r = contents id in
          let n = min len (max 0 (Bytes.length !r - off)) in
          if n <= 0 then Bytes.empty else Bytes.sub !r off n);
      pread_stream = None;
      pwrite =
        (fun id ~off ~data ->
          rpc ();
          (match !crash_at with
          | Some k when !pwrites = k -> raise Injected_crash
          | Some _ | None -> ());
          incr pwrites;
          let r = contents id in
          ensure_len r (off + Bytes.length data);
          Bytes.blit data 0 !r off (Bytes.length data));
      get_attributes =
        (fun id ->
          rpc ();
          fit_of id);
      truncate =
        (fun id ~size ->
          rpc ();
          let r = contents id in
          if Bytes.length !r > size then r := Bytes.sub !r 0 size);
    }
  in
  (conn, store, names, next, pwrites, crash_at)

let bs = Fa.block_size

(* PR-3 data-path race, on the real file agent: a sequential reader
   whose read-ahead prefetches the very blocks a concurrent writer is
   overwriting. Coherence demands that after a final flush the server
   holds the writer's bytes and the agent's cache agrees — the lost
   update the fix in [pwrite_file_impl] (deregister in-flight fetches)
   prevents. *)
let agent_read_write_race () =
  let setup sim =
    let conn, store, names, next, _pwrites, _crash_at = fake_fs_server sim in
    (* Pre-seed one 4-block file, bypassing the agent. *)
    let seed = Bytes.init (4 * bs) (fun i -> Char.chr (65 + (i / bs))) in
    Hashtbl.replace store 0 (ref (Bytes.copy seed));
    Hashtbl.replace names "f" 0;
    next := 1;
    let cfg =
      {
        Fa.cache_blocks = 8;
        flush_interval_ms = 0.;
        name_cache_entries = 8;
        fetch_window = 2;
        max_fetch_blocks = 4;
        read_ahead_blocks = 4;
      }
    in
    let tracer = Trace.create sim in
    let sz = Sanitizer.create ~tracer sim in
    let agent = Fa.create ~config:cfg ~tracer ~sim ~conn () in
    Sanitizer.attach_cache sz ~name:"agent-pool"
      ~key_to_string:(fun (f, b) -> Printf.sprintf "%d.%d" f b)
      (Fa.buffer_pool agent);
    let wdata = Bytes.make 256 'W' in
    let woff = (2 * bs) + 512 in
    let expected = Bytes.copy seed in
    Bytes.blit wdata 0 expected woff (Bytes.length wdata);
    ignore
      (Sim.spawn ~name:"reader" sim (fun () ->
           let d = Fa.open_file agent ~path:"f" in
           for _ = 1 to 4 do
             ignore (Fa.read agent d bs)
           done));
    ignore
      (Sim.spawn ~name:"writer" sim (fun () ->
           let d = Fa.open_file agent ~path:"f" in
           Fa.pwrite agent d ~off:woff ~data:wdata));
    let server_check = ref None in
    let agent_check = ref None in
    let validated = ref false in
    ignore
      (Sim.spawn_at ~name:"validator" sim ~at:200. (fun () ->
           Fa.flush agent;
           validated := true;
           let got = !(Hashtbl.find store 0) in
           if not (Bytes.equal got expected) then
             server_check :=
               Some
                 (Printf.sprintf
                    "server bytes diverge after flush (len %d vs %d)"
                    (Bytes.length got) (Bytes.length expected));
           let d = Fa.open_file agent ~path:"f" in
           let view = Fa.pread agent d ~off:woff ~len:(Bytes.length wdata) in
           if not (Bytes.equal view wdata) then
             agent_check := Some "agent cache lost the write"));
    {
      Explore.invariants =
        [
          invariant "validator-ran" (fun () ->
              if !validated then None else Some "validator never ran");
          invariant "cache-coherence" (fun () -> !server_check);
          invariant "no-lost-update" (fun () -> !agent_check);
        ];
      tracer = Some tracer;
      sanitizer = Some sz;
      observe =
        (fun () ->
          let got = !(Hashtbl.find store 0) in
          Printf.sprintf "server=%s agent_ok=%b" (Digest.to_hex (Digest.bytes got))
            (!agent_check = None));
    }
  in
  {
    Explore.sc_name = "agent-read-write-race";
    sc_descr =
      "sequential reader with read-ahead racing a writer on the same \
       blocks; flush must persist the writer's bytes";
    sc_until = None;
    sc_setup = setup;
  }

(* Two transactions co-holding a read-only lock both upgrade to Iwrite:
   an upgrade deadlock in every schedule. The section 6.4 lease break
   must abort at least one; Iwrite exclusivity (Table 1's IW column)
   must hold in every interleaving; all tables drain. *)
let txn_lock_upgrade () =
  let setup sim =
    let sz = Sanitizer.create sim in
    let lm, aborted = lm_with_aborts sim in
    Sanitizer.attach_lock_manager sz lm;
    let det = Deadlock_detector.attach lm in
    let item = Lm.File_item 7 in
    let iw_holder = ref None in
    let mutex_violation = ref None in
    let outcomes = ref [] in
    let proc txn =
      ignore
        (Sim.spawn ~name:(Printf.sprintf "T%d" txn) sim (fun () ->
             match
               Lm.acquire lm ~txn item Lm.Read_only;
               (* static-ok: leak-on-raise seeded upgrade-deadlock model: both readers hold across the sleep on purpose so the RO->IW conversions collide *)
               Sim.sleep sim 10.;
               Lm.acquire lm ~txn item Lm.Iwrite
             with
             | () ->
               (match !iw_holder with
               | Some other ->
                 mutex_violation :=
                   Some
                     (Printf.sprintf
                        "T%d granted Iwrite while T%d still holds it" txn
                        other)
               | None -> ());
               iw_holder := Some txn;
               Sim.sleep sim 5.;
               iw_holder := None;
               Lm.release_all lm ~txn;
               outcomes := (txn, `Upgraded) :: !outcomes
             | exception Lm.Wait_cancelled _ ->
               outcomes := (txn, `Aborted) :: !outcomes))
    in
    proc 1;
    proc 2;
    {
      Explore.invariants =
        [
          invariant "iwrite-exclusive" (fun () -> !mutex_violation);
          invariant "both-terminate" (fun () ->
              if List.length !outcomes = 2 then None
              else Some (Printf.sprintf "%d outcomes" (List.length !outcomes)));
          invariant "lease-break-fired" (fun () ->
              if !aborted <> [] then None
              else Some "upgrade deadlock never broken");
          invariant "true-deadlock-classified" (fun () ->
              if Deadlock_detector.true_deadlocks det >= 1 then None
              else Some "lease break not classified as a true deadlock");
          invariant "tables-drained" (fun () ->
              let w = Lm.waiter_count lm in
              let h1 = Lm.held_count lm ~txn:1
              and h2 = Lm.held_count lm ~txn:2 in
              if w = 0 && h1 = 0 && h2 = 0 then None
              else Some (Printf.sprintf "waiters=%d held=%d/%d" w h1 h2));
          invariant "two-phase" (fun () ->
              let v =
                Rhodos_util.Stats.Counter.get (Lm.stats lm) "2pl_violations"
              in
              if v = 0 then None
              else Some (Printf.sprintf "%d 2PL violations" v));
        ];
      tracer = None;
      sanitizer = Some sz;
      observe =
        (fun () ->
          let show (txn, o) =
            Printf.sprintf "T%d:%s" txn
              (match o with `Upgraded -> "upgraded" | `Aborted -> "aborted")
          in
          String.concat " " (List.map show (List.sort compare !outcomes)));
    }
  in
  {
    Explore.sc_name = "txn-lock-upgrade";
    sc_descr =
      "two transactions upgrade a shared read-only lock to Iwrite: the \
       lease break must resolve the upgrade deadlock, Iwrite staying \
       exclusive in every interleaving";
    sc_until = None;
    sc_setup = setup;
  }

(* A delayed-write cache crashing mid-batch while a mutator races the
   flusher. Per-entry written-thunk accounting must make the story
   add up in every interleaving: each key's latest bytes are durable,
   or the key is counted in the crash's dirty set, or it is the single
   entry whose thunk ran but whose bytes never went out. *)
let cache_midbatch_crash () =
  let setup sim =
    let sz = Sanitizer.create sim in
    let persisted : (int, bytes) Hashtbl.t = Hashtbl.create 8 in
    let latest : (int, bytes) Hashtbl.t = Hashtbl.create 8 in
    let interrupted = ref None in
    let dirty_at_crash = ref [] in
    let lost_count = ref (-1) in
    let crashed = ref false in
    let cache = ref None in
    let the_cache () =
      match !cache with Some c -> c | None -> assert false
    in
    let writeback_batch entries =
      List.iteri
        (fun idx (k, data, written) ->
          Sim.sleep sim 0.5;
          written ();
          if idx = 2 then begin
            interrupted := Some k;
            raise Injected_crash
          end;
          Hashtbl.replace persisted k (Bytes.copy data))
        entries
    in
    let c =
      Cache.create ~name:"midbatch" ~writeback_batch ~sim ~capacity:16
        ~policy:(Cache.Delayed_write { flush_interval_ms = 0. })
        ~writeback:(fun k data -> Hashtbl.replace persisted k (Bytes.copy data))
        ()
    in
    cache := Some c;
    Sanitizer.attach_cache sz ~name:"midbatch" ~key_to_string:string_of_int c;
    let put k tag =
      let data = Bytes.make 8 tag in
      Hashtbl.replace latest k (Bytes.copy data);
      Cache.write (the_cache ()) k data
    in
    ignore
      (Sim.spawn ~name:"writer" sim (fun () ->
           for k = 0 to 3 do
             put k 'a'
           done));
    ignore
      (Sim.spawn_at ~name:"flusher" sim ~at:1. (fun () ->
           (try Cache.flush (the_cache ()) with Injected_crash -> ());
           dirty_at_crash := Cache.dirty_keys (the_cache ());
           lost_count := Cache.crash (the_cache ());
           crashed := true));
    ignore
      (Sim.spawn_at ~name:"mutator" sim ~at:1.5 (fun () ->
           (* Lands mid-batch: either re-dirties key 0 after its
              writeback or replaces its bytes before they go out (the
              thunk's identity check then keeps it dirty). *)
           put 0 'b'));
    {
      Explore.invariants =
        [
          invariant "crash-ran" (fun () ->
              if !crashed then None else Some "flusher never crashed the pool");
          invariant "lost-matches-dirty" (fun () ->
              let n = List.length !dirty_at_crash in
              if !lost_count = n then None
              else
                Some
                  (Printf.sprintf "crash counted %d lost, dirty set had %d"
                     !lost_count n));
          invariant "accounted-or-durable" (fun () ->
              let bad =
                Hashtbl.fold
                  (fun k data acc ->
                    let durable =
                      match Hashtbl.find_opt persisted k with
                      | Some p -> Bytes.equal p data
                      | None -> false
                    in
                    if
                      durable
                      || List.mem k !dirty_at_crash
                      || !interrupted = Some k
                    then acc
                    else k :: acc)
                  latest []
              in
              match List.sort compare bad with
              | [] -> None
              | ks ->
                Some
                  (Printf.sprintf "keys silently lost: %s"
                     (String.concat ","
                        (List.map string_of_int ks))))
        ];
      tracer = None;
      sanitizer = Some sz;
      observe =
        (fun () ->
          Printf.sprintf "lost=%d dirty=[%s] interrupted=%s" !lost_count
            (String.concat ","
               (List.map string_of_int !dirty_at_crash))
            (match !interrupted with
            | Some k -> string_of_int k
            | None -> "none"));
    }
  in
  {
    Explore.sc_name = "cache-midbatch-crash";
    sc_descr =
      "delayed-write pool crashes mid-batch while a mutator races the \
       flusher: written-thunk accounting must cover every key in every \
       interleaving";
    sc_until = None;
    sc_setup = setup;
  }

(* A deliberately re-introducible model of the PR-3 lost update: a
   block with a prefetch in flight takes a local write; the fetch
   completion then installs the stale server bytes as clean, so the
   flush persists nothing. [fixed] models the shipped fix — the write
   deregisters the in-flight fetch — and must survive exhaustive
   exploration; the unfixed variant is the explorer's negative
   control, caught only under the schedule that runs the write before
   the fetch completion. *)
let lost_update_model ~fixed () =
  let setup sim =
    let server = ref "old" in
    let cache = ref None in
    (* static-ok: static-race seeded lost-update model: the unlocked cross-sleep window on this flag is the bug under study; the explorer must be able to reach it *)
    let inflight = ref false in
    ignore
      (Sim.spawn ~name:"prefetch" sim (fun () ->
           inflight := true;
           Sim.sleep sim 1.0;
           let data = !server in
           if !inflight then begin
             inflight := false;
             (* insert_clean: replaces whatever is there *)
             cache := Some (data, false)
           end));
    ignore
      (Sim.spawn ~name:"writer" sim (fun () ->
           Sim.sleep sim 1.0;
           if fixed then inflight := false;
           cache := Some ("new", true)));
    ignore
      (Sim.spawn_at ~name:"flusher" sim ~at:10. (fun () ->
           match !cache with
           | Some (v, true) ->
             server := v;
             cache := Some (v, false)
           | Some (_, false) | None -> ()));
    {
      Explore.invariants =
        [
          invariant "no-lost-update" (fun () ->
              if !server = "new" then None
              else
                Some
                  (Printf.sprintf "server still has %S after the flush"
                     !server));
        ];
      tracer = None;
      sanitizer = None;
      observe =
        (fun () ->
          Printf.sprintf "server=%s cache=%s" !server
            (match !cache with
            | Some (v, d) -> Printf.sprintf "(%s,%b)" v d
            | None -> "empty"));
    }
  in
  {
    Explore.sc_name =
      (if fixed then "lost-update-fixed" else "lost-update-bug");
    sc_descr =
      "client-cache prefetch racing a local write (model of the PR-3 \
       data-path bug)";
    sc_until = None;
    sc_setup = setup;
  }

(* The sanitizer's pinned negative control: two workers each do a
   read-modify-write of one shared [Data] cell across a sleep. With no
   lock the RMW windows overlap under {e every} schedule — FIFO
   included: the sanitizer reports a bad {e step} (unordered
   conflicting accesses), not just a bad final state — and both the
   happens-before and the lockset pass must catch it. The [locked]
   variant brackets the RMW in an Iwrite lock; the grant/release
   clock edges order the accesses and the common lock fills the
   candidate lockset, so it must stay clean. *)
let seeded_race_model ~locked () =
  let setup sim =
    let sz = Sanitizer.create sim in
    let lm = Lm.create ~sim ~on_suspect:(fun ~txn:_ -> ()) () in
    Sanitizer.attach_lock_manager sz lm;
    (* static-ok: unsynchronized-cell-write seeded race negative control: the static pass must flag this cell (the differential test asserts it pre-suppression) just as the dynamic sanitizer does; only the sweep is quieted *)
    let counter = Sim.Cell.create ~name:"model:shared-counter" sim 0 in
    let item = Lm.File_item 1 in
    let worker txn name =
      ignore
        (Sim.spawn ~name sim (fun () ->
             if locked then Lm.acquire lm ~txn item Lm.Iwrite;
             let v = Sim.Cell.get counter in
             (* static-ok: leak-on-raise seeded race model: the read-modify-write window across the sleep is the race being demonstrated; release_all follows on every survival path *)
             Sim.sleep sim 1.0;
             Sim.Cell.set counter (v + 1);
             if locked then Lm.release_all lm ~txn))
    in
    worker 1 "worker-a";
    worker 2 "worker-b";
    {
      Explore.invariants =
        (if locked then
           [
             invariant "no-lost-increment" (fun () ->
                 (* [peek]: an after-the-run observer read must not
                    register as an access *)
                 let v = Sim.Cell.peek counter in
                 if v = 2 then None
                 else Some (Printf.sprintf "counter=%d, expected 2" v));
           ]
         else [])
      ;
      tracer = None;
      sanitizer = Some sz;
      observe = (fun () -> Printf.sprintf "counter=%d" (Sim.Cell.peek counter));
    }
  in
  {
    Explore.sc_name = (if locked then "seeded-race-locked" else "seeded-race-bug");
    sc_descr =
      (if locked then
         "the seeded RMW race with the Iwrite lock held across the window: \
          the sanitizer must stay silent"
       else
         "two lock-free RMWs of a shared cell across a sleep: both sanitizer \
          passes must report it under every schedule");
    sc_until = None;
    sc_setup = setup;
  }

let explorer_scenarios () =
  [
    ( "agent-read-write-race",
      { Explore.max_depth = 3; max_runs = 600; random_walks = 24;
        walk_seed = 0x5eed },
      agent_read_write_race () );
    ( "txn-lock-upgrade",
      { Explore.max_depth = 6; max_runs = 600; random_walks = 16;
        walk_seed = 0x5eed },
      txn_lock_upgrade () );
    ( "cache-midbatch-crash",
      { Explore.max_depth = 8; max_runs = 400; random_walks = 16;
        walk_seed = 0x5eed },
      cache_midbatch_crash () );
  ]

let find_scenario name =
  let all =
    List.map (fun (n, _, sc) -> (n, sc)) (explorer_scenarios ())
    @ [
        ("lost-update-fixed", lost_update_model ~fixed:true ());
        ("lost-update-bug", lost_update_model ~fixed:false ());
        ("seeded-race-bug", seeded_race_model ~locked:false ());
        ("seeded-race-locked", seeded_race_model ~locked:true ());
      ]
  in
  List.assoc_opt name all

(* ------------------------------------------------------------------ *)
(* Crash-point sweeps                                                  *)
(* ------------------------------------------------------------------ *)

(* Cache-level: [m] dirty buffers, a per-entry batch writer, a crash
   before entry [j]: exactly the [m - j] unwritten entries must be
   counted lost. *)
let cache_crash_sweep () =
  let m = 6 in
  let check j =
    let viols = ref [] in
    let sim = Sim.create ~track:true () in
    let persisted = ref 0 in
    let writeback_batch entries =
      List.iteri
        (fun idx (_k, _data, written) ->
          if idx = j then raise Injected_crash;
          Sim.sleep sim 0.5;
          written ();
          incr persisted)
        entries
    in
    let c =
      Cache.create ~name:"sweep" ~writeback_batch ~sim ~capacity:16
        ~policy:(Cache.Delayed_write { flush_interval_ms = 0. })
        ~writeback:(fun _ _ -> incr persisted)
        ()
    in
    ignore
      (Sim.spawn ~name:"driver" sim (fun () ->
           for k = 0 to m - 1 do
             Cache.write c k (Bytes.make 8 'x')
           done;
           (try Cache.flush c with Injected_crash -> ());
           let lost = Cache.crash c in
           if lost <> m - j then
             viols :=
               ( "per-entry-accounting",
                 Printf.sprintf
                   "crash before entry %d: %d lost, expected %d" j lost
                   (m - j) )
               :: !viols;
           if !persisted <> j then
             viols :=
               ( "persisted-count",
                 Printf.sprintf "%d entries persisted, expected %d"
                   !persisted j )
               :: !viols));
    Sim.run sim;
    List.rev !viols
  in
  Explore.crash_sweep ~points:(m + 1) ~check

(* Agent-level: dirty blocks coalescing into three range pwrites
   ([a:0-1], [a:3], [b:0]); a crash at pwrite call [k] must leave the
   runs before [k] durable with the written bytes, lose at most the
   single interrupted run uncounted (its thunks ran), and count every
   later block via [crash]. *)
let agent_crash_sweep () =
  (* run sizes in flush order, per the dirty pattern built below *)
  let run_blocks = [| 2; 1; 1 |] in
  let total_blocks = Array.fold_left ( + ) 0 run_blocks in
  let check k =
    let viols = ref [] in
    let sim = Sim.create ~track:true () in
    let conn, store, _names, _next, _pwrites, crash_at = fake_fs_server sim in
    let cfg =
      {
        Fa.cache_blocks = 16;
        flush_interval_ms = 0.;
        name_cache_entries = 8;
        fetch_window = 1;
        max_fetch_blocks = 8;
        read_ahead_blocks = 0;
      }
    in
    let agent = Fa.create ~config:cfg ~sim ~conn () in
    ignore
      (Sim.spawn ~name:"driver" sim (fun () ->
           let da = Fa.create_file agent ~path:"a" in
           let db = Fa.create_file agent ~path:"b" in
           let block tag = Bytes.make bs tag in
           (* file a: blocks 0,1 contiguous, then 3 (hole at 2) *)
           Fa.pwrite agent da ~off:0 ~data:(block 'p');
           Fa.pwrite agent da ~off:bs ~data:(block 'q');
           Fa.pwrite agent da ~off:(3 * bs) ~data:(block 'r');
           Fa.pwrite agent db ~off:0 ~data:(block 's');
           crash_at := Some k;
           (try Fa.flush agent with Injected_crash -> ());
           crash_at := None;
           let lost = Fa.crash agent in
           let durable_blocks =
             let sub = ref 0 in
             for i = 0 to min k (Array.length run_blocks) - 1 do
               sub := !sub + run_blocks.(i)
             done;
             !sub
           in
           let interrupted_blocks =
             if k < Array.length run_blocks then run_blocks.(k) else 0
           in
           let expected_lost =
             total_blocks - durable_blocks - interrupted_blocks
           in
           if lost <> expected_lost then
             viols :=
               ( "written-thunk-accounting",
                 Printf.sprintf
                   "crash at pwrite %d: %d lost, expected %d (durable %d, \
                    interrupted %d)"
                   k lost expected_lost durable_blocks interrupted_blocks )
               :: !viols;
           (* durable runs must carry the written bytes (file ids are
              allocation-ordered: "a" = 0, "b" = 1) *)
           let expect_byte file off tag =
             match Hashtbl.find_opt store file with
             | None ->
               viols :=
                 ("durable-bytes", Printf.sprintf "file %d missing" file)
                 :: !viols
             | Some r ->
               if Bytes.length !r <= off || Bytes.get !r off <> tag then
                 viols :=
                   ( "durable-bytes",
                     Printf.sprintf "file %d byte %d not %c" file off tag )
                   :: !viols
           in
           if k >= 1 then begin
             expect_byte 0 0 'p';
             expect_byte 0 bs 'q'
           end;
           if k >= 2 then expect_byte 0 (3 * bs) 'r';
           if k >= 3 then expect_byte 1 0 's';
           ignore da;
           ignore db));
    Sim.run sim;
    List.rev !viols
  in
  Explore.crash_sweep ~points:(Array.length run_blocks + 1) ~check
