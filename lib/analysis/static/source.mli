(** Source acquisition for the static passes: read, parse with the
    compiler's own frontend ([compiler-libs]), and extract
    [static-ok] suppression comments.

    A file that fails to parse keeps [ast = None]; the driver falls
    back to the token-based text lint for it, so a syntax error never
    hides a file from analysis entirely. *)

type file = {
  path : string;
  module_name : string;  (** capitalised basename, the root module *)
  src : string;
  ast : Parsetree.structure option;  (** [None] when unparseable *)
  parse_error : string option;
  suppressions : (int * string) list;
      (** [(line, rule)] from [(* static-ok: <rule> <reason> *)] *)
}

val module_name_of_path : string -> string

val scan_suppressions : string -> (int * string) list

val suppressed : (int * string) list -> line:int -> rule:string -> bool
(** A suppression on line L covers findings on L and L+1. *)

val parse_string :
  filename:string -> string -> (Parsetree.structure, string) result

val of_string : path:string -> string -> file
(** Build a {!file} from in-memory source (tests use this). *)

val load : string -> file

val ml_files : string -> string list
(** Every [.ml] under a directory, sorted, skipping [_build] and
    dot-directories. *)

val load_dir : string -> file list
