type file = {
  path : string;
  module_name : string;
  src : string;
  ast : Parsetree.structure option;
  parse_error : string option;
  suppressions : (int * string) list;
}

let module_name_of_path path =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename path))

(* [(* static-ok: <rule> <reason> *)] — scanned on the raw source so a
   suppression works even when the file does not parse. The rule is
   the first word after the marker; everything after it is the
   documented justification (required by convention, not enforced). A
   suppression on line L covers findings on L and L+1, so the comment
   can sit on the offending line or on its own line just above. *)
let scan_suppressions src =
  let marker = "static-ok:" in
  let mlen = String.length marker in
  let out = ref [] in
  List.iteri
    (fun idx line ->
      let n = String.length line in
      let i = ref 0 in
      while !i + mlen <= n do
        if String.sub line !i mlen = marker then begin
          let j = ref (!i + mlen) in
          while !j < n && line.[!j] = ' ' do
            incr j
          done;
          let k = ref !j in
          while
            !k < n
            && (match line.[!k] with
               | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' -> true
               | _ -> false)
          do
            incr k
          done;
          if !k > !j then
            out := (idx + 1, String.sub line !j (!k - !j)) :: !out;
          i := !k
        end
        else incr i
      done)
    (String.split_on_char '\n' src);
  List.rev !out

let suppressed suppressions ~line ~rule =
  List.exists
    (fun (l, r) -> r = rule && (l = line || l = line - 1))
    suppressions

let parse_string ~filename src =
  let lexbuf = Lexing.from_string src in
  Lexing.set_filename lexbuf filename;
  match Parse.implementation lexbuf with
  | ast -> Ok ast
  | exception e -> Error (Printexc.to_string e)

let of_string ~path src =
  let ast, parse_error =
    match parse_string ~filename:path src with
    | Ok ast -> (Some ast, None)
    | Error e -> (None, Some e)
  in
  {
    path;
    module_name = module_name_of_path path;
    src;
    ast;
    parse_error;
    suppressions = scan_suppressions src;
  }

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load path = of_string ~path (read_file path)

let rec ml_files dir =
  match Sys.readdir dir with
  | entries ->
    Array.sort compare entries;
    Array.fold_left
      (fun acc entry ->
        let path = Filename.concat dir entry in
        if Sys.is_directory path then
          if entry = "_build" || (String.length entry > 0 && entry.[0] = '.')
          then acc
          else acc @ ml_files path
        else if Filename.check_suffix entry ".ml" then acc @ [ path ]
        else acc)
      [] entries
  | exception Sys_error _ -> []

let load_dir dir = List.map load (ml_files dir)
