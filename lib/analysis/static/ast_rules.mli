(** AST ports of the token-based lint rules, sharing rule names (and
    therefore suppressions and baselines) with the text engine in
    [Lint]: [raw-shared-cell], [no-unseeded-random],
    [hashtbl-iter-order]. The text versions stay on as the fallback
    for sources that fail to parse. [global-mutable-state] is no
    longer ported: the race pass's [unmonitored-shared-state]
    supersedes it for parseable sources with real reachability. *)

val migrated_rules : string list

val run : Source.file list -> Finding.t list
