(** AST ports of the token-based lint rules, sharing rule names (and
    therefore suppressions and baselines) with the text engine in
    [Lint]: [global-mutable-state], [raw-shared-cell],
    [no-unseeded-random], [hashtbl-iter-order]. The text versions
    stay on as the fallback for sources that fail to parse. *)

val migrated_rules : string list

val run : Source.file list -> Finding.t list
