(** Driver for the AST-based static analysis: load, parse, build the
    call graph, run the passes ({!Mayblock} + {!Lockpass},
    {!Protocol}, {!Exnflow}, {!Racepass}, {!Ast_rules}, token-engine
    fallback for unparseable sources), apply [static-ok]
    suppressions, and diff against the committed baseline. Pure —
    printing and exit codes belong to [bin/rhodos_lint]. *)

type report = {
  findings : Finding.t list;  (** after suppressions, sorted *)
  suppressed : int;
  parse_failures : (string * string) list;  (** path, error *)
  files : Source.file list;
  timings : (string * float) list;
      (** per-pass wall-time (seconds) in run order; all zero unless
          a [clock] was supplied *)
  race_locations : Racepass.location list;
      (** the race pass's protection map: every escaped shared
          location with its inferred guarding locks and access
          sites *)
}

val analyze_files : ?clock:(unit -> float) -> Source.file list -> report
(** [clock] (e.g. [Sys.time], passed by the CLI) times each pass; the
    default constant clock keeps the library free of host time. *)

val analyze : ?clock:(unit -> float) -> dirs:string list -> unit -> report

val against_baseline :
  report -> baseline:string list -> Finding.t list * string list
(** (new findings not in the baseline, stale baseline keys). *)

val self_test : dir:string -> bool * string list
(** Run the engine over a fixture directory and check each file's
    [expect: rule ...] / [expect-clean] directive; also asserts that
    every headline finding (blocking, deadlock, exception-flow and
    race rules) carries a witness chain. Returns pass/fail and a
    report line per file. *)
