module SS = Set.Make (String)

type env = {
  current_module : string;
  aliases : (string * string list) list;
  known_roots : SS.t;
}

let flatten lid = Longident.flatten lid

let last lid = Longident.last lid

let make_env ~current_module ~aliases ~known_roots =
  { current_module; aliases; known_roots = SS.of_list known_roots }

(* The dune libraries wrap each directory under an umbrella module
   (Rhodos_sim.Sim, Rhodos_txn.Lock_manager, ...). Canonical names
   drop the wrapper so that "Rhodos_sim.Sim.sleep", "Sim.sleep" and an
   aliased "S.sleep" all resolve to the same node. *)
let is_wrapper c =
  String.length c > 7 && String.sub c 0 7 = "Rhodos_"

let expand_alias env components =
  match components with
  | head :: rest -> (
    match List.assoc_opt head env.aliases with
    | Some expansion -> expansion @ rest
    | None -> components)
  | [] -> []

(* Canonical form of a (possibly aliased, possibly wrapped) path:
   expand the head alias, drop library wrappers, then cut the path at
   the first component that names a module we have sources for — the
   canonical root. "Rhodos_txn.Lock_manager.acquire" and
   "Lm.acquire" both become "Lock_manager.acquire"; paths with no
   known root (List.iter, Hashtbl.create) keep their full form. *)
let canonical env components =
  let components = expand_alias env components in
  let components = List.filter (fun c -> not (is_wrapper c)) components in
  let rec cut = function
    | [] -> []
    | c :: _ as l when SS.mem c env.known_roots -> l
    | _ :: rest -> cut rest
  in
  let cut_path = cut components in
  String.concat "." (if cut_path = [] then components else cut_path)

let canonical_lid env lid = canonical env (flatten lid)

(* Resolve a use site against the set of defined function nodes:
   an unqualified or locally-qualified name prefers a definition in
   the current module ("Mailbox.recv" inside sim.ml is
   "Sim.Mailbox.recv"); otherwise the canonical form is used as-is,
   whether or not it names a node (seeds like "Sim.sleep" and
   externals like "List.iter" stay resolvable by name). *)
let resolve env ~defined components =
  let joined = String.concat "." components in
  let in_module = env.current_module ^ "." ^ joined in
  if defined in_module then in_module
  else
    let c = canonical env components in
    if defined c then c
    else if List.length components = 1 && not (defined joined) then joined
    else c

let resolve_lid env ~defined lid = resolve env ~defined (flatten lid)
