type t = {
  rule : string;
  file : string;
  line : int;
  symbol : string;
  slug : string;
  message : string;
  witness : string list;
}

let v ?(symbol = "") ?(witness = []) ~rule ~file ~line ~slug message =
  { rule; file; line; symbol; slug; message; witness }

(* Line numbers churn with every edit; the baseline key must not. A
   finding is identified by what it is (rule), where it lives (file
   basename + enclosing symbol) and what it is about (the pass-chosen
   slug: callee, cycle, constructor...). *)
let key f =
  String.concat "|" [ f.rule; Filename.basename f.file; f.symbol; f.slug ]

let compare_finding a b =
  compare (a.file, a.line, a.rule, a.slug) (b.file, b.line, b.rule, b.slug)

let sort fs = List.sort_uniq compare_finding fs

let pp fmt f =
  Format.fprintf fmt "%s:%d: [%s] %s%s" f.file f.line f.rule
    (if f.symbol = "" then "" else Printf.sprintf "(%s) " f.symbol)
    f.message;
  List.iter (fun w -> Format.fprintf fmt "@\n    %s" w) f.witness

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json f =
  let q s = "\"" ^ json_escape s ^ "\"" in
  Printf.sprintf
    "{\"rule\":%s,\"file\":%s,\"line\":%d,\"symbol\":%s,\"message\":%s,\
     \"witness\":[%s],\"key\":%s}"
    (q f.rule) (q f.file) f.line (q f.symbol) (q f.message)
    (String.concat "," (List.map q f.witness))
    (q (key f))

let list_to_json ?(suppressed = 0) ?(parse_failures = []) ?(timings = [])
    ?(extras = []) fs =
  let q s = "\"" ^ json_escape s ^ "\"" in
  Printf.sprintf
    "{\"findings\":[%s],\"suppressed\":%d,\"parse_failures\":[%s],\
     \"timings\":[%s]%s}"
    (String.concat "," (List.map to_json fs))
    suppressed
    (String.concat "," (List.map q parse_failures))
    (String.concat ","
       (List.map
          (fun (pass, secs) ->
            Printf.sprintf "{\"pass\":%s,\"ms\":%.3f}" (q pass)
              (secs *. 1000.))
          timings))
    (String.concat ""
       (List.map
          (fun (name, raw_json) -> Printf.sprintf ",%s:%s" (q name) raw_json)
          extras))

(* ------------------------------------------------------------------ *)
(* Baseline                                                            *)
(* ------------------------------------------------------------------ *)

(* The committed baseline is a JSON object whose ["keys"] array lists
   the accepted finding keys. Parsing extracts every JSON string
   literal (escape-aware) and drops the leading "keys" member name, so
   the file stays hand-editable without a JSON dependency. *)
let scan_json_strings s =
  let n = String.length s in
  let out = ref [] in
  let buf = Buffer.create 32 in
  let i = ref 0 in
  while !i < n do
    if s.[!i] = '"' then begin
      Buffer.clear buf;
      incr i;
      let fin = ref false in
      while (not !fin) && !i < n do
        (match s.[!i] with
        | '\\' when !i + 1 < n ->
          (match s.[!i + 1] with
          | 'n' -> Buffer.add_char buf '\n'
          | 't' -> Buffer.add_char buf '\t'
          | c -> Buffer.add_char buf c);
          incr i
        | '"' -> fin := true
        | c -> Buffer.add_char buf c);
        incr i
      done;
      out := Buffer.contents buf :: !out
    end
    else incr i
  done;
  List.rev !out

let baseline_of_string s =
  List.filter (fun k -> k <> "keys") (scan_json_strings s)

let baseline_to_string keys =
  let keys = List.sort_uniq compare keys in
  "{\"keys\":[\n"
  ^ String.concat ",\n"
      (List.map (fun k -> "  \"" ^ json_escape k ^ "\"") keys)
  ^ "\n]}\n"
