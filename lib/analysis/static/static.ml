(* Driver for the AST-based whole-program analysis: load sources,
   build the call graph, run the passes, apply suppressions, and
   compare against a committed baseline. Pure — printing and exit
   codes live in bin/rhodos_lint. *)

module Lint = Rhodos_analysis.Lint

type report = {
  findings : Finding.t list;
  suppressed : int;
  parse_failures : (string * string) list;
  files : Source.file list;
  timings : (string * float) list;
  race_locations : Racepass.location list;
}

let finding_of_violation (v : Lint.violation) =
  Finding.v ~rule:v.Lint.rule ~file:v.Lint.file ~line:v.Lint.line
    ~slug:"text-fallback" v.Lint.message

(* [clock] defaults to a constant so the library stays free of host
   clocks (the host-clock-hygiene rule); the CLI passes [Sys.time] to
   get real per-pass wall-time in [--json]. *)
let analyze_files ?(clock = fun () -> 0.) files =
  let timings = ref [] in
  let timed name f =
    let t0 = clock () in
    let r = f () in
    timings := (name, clock () -. t0) :: !timings;
    r
  in
  let graph = timed "callgraph" (fun () -> Callgraph.build files) in
  let mb = timed "mayblock" (fun () -> Mayblock.compute graph) in
  let lock = timed "lockpass" (fun () -> Lockpass.run graph mb) in
  let proto = timed "protocol" (fun () -> Protocol.run graph) in
  let _exn, exn_findings =
    timed "exnflow" (fun () -> Exnflow.run graph lock)
  in
  let race = timed "racepass" (fun () -> Racepass.run graph mb lock) in
  let ast = timed "ast-rules" (fun () -> Ast_rules.run files) in
  (* Files the compiler frontend rejects still get the token engine:
     a syntax error must not hide a file from analysis. *)
  let fallback =
    List.concat_map
      (fun (f : Source.file) ->
        match f.Source.ast with
        | Some _ -> []
        | None ->
          List.map finding_of_violation
            (Lint.lint_source ~file:f.Source.path f.Source.src))
      files
  in
  let all =
    Finding.sort
      (lock.Lockpass.findings @ proto @ exn_findings
      @ race.Racepass.findings @ ast @ fallback)
  in
  let suppressions_for path =
    match
      List.find_opt (fun (f : Source.file) -> f.Source.path = path) files
    with
    | Some f -> f.Source.suppressions
    | None -> []
  in
  let kept, dropped =
    List.partition
      (fun (f : Finding.t) ->
        not
          (Source.suppressed
             (suppressions_for f.Finding.file)
             ~line:f.Finding.line ~rule:f.Finding.rule))
      all
  in
  {
    findings = kept;
    suppressed = List.length dropped;
    parse_failures =
      List.filter_map
        (fun (f : Source.file) ->
          Option.map (fun e -> (f.Source.path, e)) f.Source.parse_error)
        files;
    files;
    timings = List.rev !timings;
    race_locations = race.Racepass.locations;
  }

let analyze ?clock ~dirs () =
  analyze_files ?clock (List.concat_map Source.load_dir dirs)

let against_baseline report ~baseline =
  let keys = List.map Finding.key report.findings in
  let fresh =
    List.filter
      (fun f -> not (List.mem (Finding.key f) baseline))
      report.findings
  in
  let stale = List.filter (fun k -> not (List.mem k keys)) baseline in
  (fresh, stale)

(* ------------------------------------------------------------------ *)
(* Fixture self-test                                                   *)
(* ------------------------------------------------------------------ *)

(* Fixtures carry their expectations in comments:
   [(* expect: rule-a rule-b *)] — the findings in this file must be
   exactly that rule set; no directive (or [expect-clean]) — the file
   must be silent. *)

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let index_of hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i =
    if i + nl > hl then None
    else if String.sub hay i nl = needle then Some i
    else go (i + 1)
  in
  go 0

let expected_rules src =
  match index_of src "expect:" with
  | None -> []
  | Some i ->
    let rest = String.sub src (i + 7) (String.length src - i - 7) in
    let stop =
      match index_of rest "*)" with
      | Some j -> String.sub rest 0 j
      | None -> rest
    in
    List.sort_uniq compare
      (List.filter
         (fun w -> w <> "")
         (String.split_on_char ' '
            (String.map (fun c -> if c = '\n' then ' ' else c) stop)))

let self_test ~dir =
  let report = analyze ~dirs:[ dir ] () in
  let ok = ref true in
  let out = ref [] in
  let say fmt = Printf.ksprintf (fun s -> out := s :: !out) fmt in
  List.iter
    (fun (f : Source.file) ->
      let base = Filename.basename f.Source.path in
      let expected = expected_rules f.Source.src in
      let found =
        List.sort_uniq compare
          (List.filter_map
             (fun (x : Finding.t) ->
               if x.Finding.file = f.Source.path then Some x.Finding.rule
               else None)
             report.findings)
      in
      let expected =
        if expected = [] && contains f.Source.src "expect-clean" then []
        else expected
      in
      if found = expected then
        say "fixture %s: ok (%s)" base
          (if expected = [] then "clean"
           else String.concat ", " expected)
      else begin
        ok := false;
        say "fixture %s: FAIL expected [%s] got [%s]" base
          (String.concat ", " expected)
          (String.concat ", " found)
      end)
    report.files;
  (* The headline rules must come with evidence: a finding without a
     witness chain is useless to the reader and a regression here. *)
  let witnessed_rules =
    [
      "may-block-under-lock"; "lock-order-cycle"; "swallowed-control-exn";
      "leak-on-raise"; "ivar-unfilled-on-raise"; "unmapped-wire-error";
      "escaping-raise-into-dispatch"; "static-race";
      "unsynchronized-cell-write"; "unmonitored-shared-state";
    ]
  in
  List.iter
    (fun (x : Finding.t) ->
      if
        List.mem x.Finding.rule witnessed_rules
        && x.Finding.witness = []
      then begin
        ok := false;
        say "finding %s at %s:%d has no witness chain" x.Finding.rule
          x.Finding.file x.Finding.line
      end)
    report.findings;
  List.iter
    (fun (path, err) ->
      ok := false;
      say "fixture %s failed to parse: %s" (Filename.basename path) err)
    report.parse_failures;
  (!ok, List.rev !out)
