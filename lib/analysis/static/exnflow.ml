open Parsetree

(* Interprocedural exception flow. Per function, the may-raise set:
   every exception constructor an activation can let escape, seeded
   by syntactic [raise]s, a table of implicit raisers ([Option.get],
   [Hashtbl.find], [failwith], ...) and the declared raises of the
   simulator's blocking primitives (every blocking point can deliver
   [Sim.Killed]), then propagated over the call graph to a fixpoint.
   [try ... with] arms subtract the constructors they match; catch-all
   arms subtract everything, and the set an arm's own body raises
   (including [raise e] of the bound exception) flows back out.

   On top of the raise sets, four rules:

   - [swallowed-control-exn]: a catch-all arm that can absorb a
     control exception ([Sim.Killed]) without re-raising it — the
     process would survive its own kill point;
   - [leak-on-raise] (with {!Lockpass} summaries): a lock or
     semaphore token is held at a call that may raise an exception no
     enclosing handler catches, with no enclosing [Fun.protect] — the
     grant leaks forever;
   - [ivar-unfilled-on-raise]: an [Ivar.fill] only reachable after a
     possibly-escaping raise point — the readers are stranded;
   - [unmapped-wire-error] / [escaping-raise-into-dispatch] (with
     {!Protocol} dispatchers): an exception reaching an RPC
     dispatcher's handler arm that the [E_*] error mapper only
     catch-alls, or escaping a dispatcher with no handler at all.

   Approximations (see DESIGN.md 4b'''): lambdas are inlined at their
   definition point (a stored closure's raises count where it is
   built); [assert] is ignored; a guarded handler arm neither
   subtracts nor swallows; any enclosing [Fun.protect] absolves a
   leak; [Ivar.fill] is only checked at direct call sites; spawn-like
   closure arguments are analysed in a fresh context and contribute
   nothing to the spawner. *)

module SS = Set.Make (String)
module SM = Map.Make (String)

(* Where a raise entered the current function: directly ([via =
   None]) or through a callee — the hop of a Mayblock-style witness
   chain. *)
type origin = { via : string option; line : int }

type rmap = origin SM.t

type t = {
  graph : Callgraph.t;
  exn_decls : SS.t;
  raise_maps : (string, rmap ref) Hashtbl.t;
}

(* An unresolvable [raise e]: some exception, constructor unknown.
   Escapes everything except a catch-all. *)
let any_exn = "*"

let control_exns = [ "Sim.Killed" ]

(* Blocking primitives deliver the kill signal as [Sim.Killed] at the
   suspension point; the RPC client additionally gives up with
   [Net.Rpc.Timeout]. *)
let declared_raises =
  [
    ("Sim.sleep", [ "Sim.Killed" ]);
    ("Sim.suspend", [ "Sim.Killed" ]);
    ("Sim.suspend_full", [ "Sim.Killed" ]);
    ("Sim.Mailbox.recv", [ "Sim.Killed" ]);
    ("Sim.Mailbox.recv_timeout", [ "Sim.Killed" ]);
    ("Sim.Condition.wait", [ "Sim.Killed" ]);
    ("Sim.Condition.wait_timeout", [ "Sim.Killed" ]);
    ("Sim.Ivar.read", [ "Sim.Killed" ]);
    ("Sim.Semaphore.acquire", [ "Sim.Killed" ]);
    ("Sim.Semaphore.with_acquire", [ "Sim.Killed" ]);
    ("Lock_manager.acquire", [ "Sim.Killed"; "Lock_manager.Wait_cancelled" ]);
    ("Net.recv", [ "Sim.Killed" ]);
    ("Net.recv_timeout", [ "Sim.Killed" ]);
    ("Net.Rpc.call", [ "Sim.Killed"; "Net.Rpc.Timeout" ]);
  ]

(* Stdlib partial functions whose failure mode is an exception. *)
let implicit_raises =
  [
    ("failwith", [ "Failure" ]);
    ("invalid_arg", [ "Invalid_argument" ]);
    ("Option.get", [ "Invalid_argument" ]);
    ("List.hd", [ "Failure" ]);
    ("List.tl", [ "Failure" ]);
    ("Hashtbl.find", [ "Not_found" ]);
    ("List.assoc", [ "Not_found" ]);
    ("List.find", [ "Not_found" ]);
  ]

(* ------------------------------------------------------------------ *)
(* Exception-constructor naming                                        *)
(* ------------------------------------------------------------------ *)

(* [Pstr_exception] declarations, keyed by their dotted module path,
   so that an unqualified raise site and a cross-module handler
   pattern agree on one canonical name ("File_service.File_not_found"
   both from [raise (File_not_found id)] inside file_service.ml and
   from a [Fs.File_not_found] match arm in cluster.ml). *)
let collect_exn_decls (files : Source.file list) =
  let acc = ref SS.empty in
  let rec walk prefix items =
    List.iter
      (fun item ->
        match item.pstr_desc with
        | Pstr_exception te ->
          acc :=
            SS.add (prefix ^ "." ^ te.ptyexn_constructor.pext_name.txt) !acc
        | Pstr_module { pmb_name = { txt = Some name; _ }; pmb_expr; _ } -> (
          match pmb_expr.pmod_desc with
          | Pmod_structure sub -> walk (prefix ^ "." ^ name) sub
          | _ -> ())
        | _ -> ())
      items
  in
  List.iter
    (fun (f : Source.file) ->
      match f.Source.ast with
      | None -> ()
      | Some items -> walk f.Source.module_name items)
    files;
  !acc

(* Canonical name of an exception constructor used inside function
   [fn]: a qualified path goes through the usual alias/wrapper
   canonicalisation; an unqualified one is qualified against [fn]'s
   enclosing module path, walking outward until a declaration
   matches (builtins like [Failure] stay bare). *)
let resolve_exn t env ~fn lid =
  match Names.flatten lid with
  | [ c ] ->
    let prefix =
      match String.rindex_opt fn '.' with
      | Some i -> String.sub fn 0 i
      | None -> ""
    in
    let parts = if prefix = "" then [] else String.split_on_char '.' prefix in
    let rec up = function
      | [] -> c
      | parts ->
        let cand = String.concat "." parts ^ "." ^ c in
        if SS.mem cand t.exn_decls then cand
        else up (List.rev (List.tl (List.rev parts)))
    in
    up parts
  | path -> Names.canonical env path

(* ------------------------------------------------------------------ *)
(* Handler-arm shapes                                                  *)
(* ------------------------------------------------------------------ *)

type arm_shape = {
  a_all : bool;  (* catch-all: matches any exception *)
  a_ctors : string list;  (* canonical constructors matched *)
  a_bound : string option;  (* variable bound to the exception *)
}

let rec shape_of_pat t env ~fn p =
  match p.ppat_desc with
  | Ppat_any -> { a_all = true; a_ctors = []; a_bound = None }
  | Ppat_var v -> { a_all = true; a_ctors = []; a_bound = Some v.txt }
  | Ppat_alias (p, v) ->
    { (shape_of_pat t env ~fn p) with a_bound = Some v.txt }
  | Ppat_construct ({ txt; _ }, _) ->
    { a_all = false; a_ctors = [ resolve_exn t env ~fn txt ]; a_bound = None }
  | Ppat_or (a, b) ->
    let sa = shape_of_pat t env ~fn a and sb = shape_of_pat t env ~fn b in
    {
      a_all = sa.a_all || sb.a_all;
      a_ctors = sa.a_ctors @ sb.a_ctors;
      a_bound = (match sa.a_bound with Some _ as s -> s | None -> sb.a_bound);
    }
  | Ppat_constraint (p, _) | Ppat_open (_, p) -> shape_of_pat t env ~fn p
  | _ -> { a_all = false; a_ctors = []; a_bound = None }

let rec strip e =
  match e.pexp_desc with
  | Pexp_constraint (e, _) | Pexp_open (_, e) -> strip e
  | _ -> e

let is_exception_case c =
  match c.pc_lhs.ppat_desc with Ppat_exception _ -> true | _ -> false

let strip_exception_case c =
  match c.pc_lhs.ppat_desc with
  | Ppat_exception p -> { c with pc_lhs = p }
  | _ -> c

(* ------------------------------------------------------------------ *)
(* Error mappers (exception -> E_* wire constructor)                   *)
(* ------------------------------------------------------------------ *)

let rec fun_body_cases e =
  match e.pexp_desc with
  | Pexp_fun (_, _, _, b) | Pexp_newtype (_, b) -> fun_body_cases b
  | Pexp_function cases -> Some cases
  | Pexp_match (_, cases) -> Some cases
  | _ -> None

let is_e_ctor_result e =
  match (strip e).pexp_desc with
  | Pexp_construct ({ txt; _ }, _) ->
    let n = Names.last txt in
    String.length n > 2 && String.sub n 0 2 = "E_"
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Context                                                             *)
(* ------------------------------------------------------------------ *)

type ctx = {
  t : t;
  lock : Lockpass.result;
  dispatch_sites : (string * (Protocol.decl * Protocol.site)) list;
      (* keyed by the dispatcher's function *)
  mappers : (string, SS.t) Hashtbl.t;  (* fn -> explicitly mapped ctors *)
  mutable emit : bool;
  mutable changed : bool;
  mutable findings : Finding.t list;
}

let collect_mappers t =
  let mappers = Hashtbl.create 8 in
  List.iter
    (fun (n : Callgraph.node) ->
      match Option.map fun_body_cases n.body with
      | Some (Some cases)
        when List.exists (fun c -> is_e_ctor_result c.pc_rhs) cases ->
        let mapped =
          List.concat_map
            (fun c -> (shape_of_pat t n.env ~fn:n.fn c.pc_lhs).a_ctors)
            cases
        in
        Hashtbl.replace mappers n.fn (SS.of_list mapped)
      | _ -> ())
    (Callgraph.nodes_in_order t.graph);
  mappers

let map_of t fn =
  match Hashtbl.find_opt t.raise_maps fn with
  | Some m -> m
  | None ->
    let m = ref SM.empty in
    Hashtbl.replace t.raise_maps fn m;
    m

(* What a call to [name] may let escape, by name. *)
let callee_raises ctx name =
  match List.assoc_opt name declared_raises with
  | Some l -> l
  | None ->
    if List.exists (fun f -> name = "Service_conn." ^ f) Callgraph.conn_fields
    then [ "Sim.Killed"; "Net.Rpc.Timeout" ]
    else (
      match List.assoc_opt name implicit_raises with
      | Some l -> l
      | None -> (
        match Hashtbl.find_opt ctx.t.raise_maps name with
        | Some m -> List.map fst (SM.bindings !m)
        | None -> []))

(* Witness chain fn -> ... -> raise origin, following [via] links.
   Bounded like Mayblock.chain. *)
let chain t fn exn =
  let rec go acc fn depth =
    if depth > 64 then List.rev (fn :: acc)
    else
      match Hashtbl.find_opt t.raise_maps fn with
      | None -> List.rev (fn :: acc)
      | Some m -> (
        match SM.find_opt exn !m with
        | Some { via = Some v; _ } -> go (fn :: acc) v (depth + 1)
        | Some { via = None; _ } | None -> List.rev (fn :: acc))
  in
  go [] fn 0

let witness_of ctx (node : Callgraph.node) exn (o : origin) =
  match o.via with
  | None -> Printf.sprintf "%s raised at %s:%d" exn node.file o.line
  | Some v ->
    Printf.sprintf "%s escapes via %s (%s:%d)" exn
      (String.concat " -> " (node.fn :: chain ctx.t v exn))
      node.file o.line

let finding ctx f = if ctx.emit then ctx.findings <- f :: ctx.findings

(* ------------------------------------------------------------------ *)
(* Raise-set evaluation                                                *)
(* ------------------------------------------------------------------ *)

let union = SM.union (fun _ a _ -> Some a)

let rec eval ctx (node : Callgraph.node) rebinds e : rmap =
  match e.pexp_desc with
  | Pexp_sequence (a, b) ->
    union (eval ctx node rebinds a) (eval ctx node rebinds b)
  | Pexp_ifthenelse (c, th, el) ->
    let m = union (eval ctx node rebinds c) (eval ctx node rebinds th) in
    (match el with Some el -> union m (eval ctx node rebinds el) | None -> m)
  | Pexp_let (_, vbs, b) ->
    List.fold_left
      (fun acc vb -> union acc (eval ctx node rebinds vb.pvb_expr))
      (eval ctx node rebinds b) vbs
  | Pexp_fun (_, default, _, b) ->
    let m = eval ctx node rebinds b in
    (match default with
    | Some d -> union m (eval ctx node rebinds d)
    | None -> m)
  | Pexp_newtype (_, b) -> eval ctx node rebinds b
  | Pexp_function cases ->
    List.fold_left
      (fun acc c ->
        let acc =
          match c.pc_guard with
          | Some g -> union acc (eval ctx node rebinds g)
          | None -> acc
        in
        union acc (eval ctx node rebinds c.pc_rhs))
      SM.empty cases
  | Pexp_try (b, cases) ->
    handle ctx node rebinds ~body_map:(eval ctx node rebinds b) ~cases
  | Pexp_match (scrut, cases) ->
    let exn_cases, val_cases = List.partition is_exception_case cases in
    let scrut_map = eval ctx node rebinds scrut in
    let scrut_map =
      if exn_cases = [] then scrut_map
      else
        handle ctx node rebinds ~body_map:scrut_map
          ~cases:(List.map strip_exception_case exn_cases)
    in
    List.fold_left
      (fun acc c ->
        let acc =
          match c.pc_guard with
          | Some g -> union acc (eval ctx node rebinds g)
          | None -> acc
        in
        union acc (eval ctx node rebinds c.pc_rhs))
      scrut_map val_cases
  | Pexp_apply (f, args) -> apply ctx node rebinds e f args
  | Pexp_ident _ -> (
    (* A bare reference passed as a value: the typical higher-order
       wrappers run it on the caller's path (same convention as the
       call graph). *)
    match Callgraph.callee_name ctx.t.graph node.env e with
    | Some n ->
      List.fold_left
        (fun acc exn ->
          if SM.mem exn acc then acc
          else
            SM.add exn
              { via = Some n; line = Callgraph.line_of_loc e.pexp_loc }
              acc)
        SM.empty (callee_raises ctx n)
    | None -> SM.empty)
  | _ -> fallback ctx node rebinds e

and fallback ctx node rebinds e =
  let acc = ref SM.empty in
  let it =
    {
      Ast_iterator.default_iterator with
      expr = (fun _ e' -> acc := union !acc (eval ctx node rebinds e'));
    }
  in
  Ast_iterator.default_iterator.expr it e;
  !acc

and apply ctx node rebinds e f args =
  let line = Callgraph.line_of_loc e.pexp_loc in
  let eval_args () =
    List.fold_left
      (fun acc (_, a) -> union acc (eval ctx node rebinds a))
      SM.empty args
  in
  match Callgraph.callee_name ctx.t.graph node.env f with
  | Some ("raise" | "raise_notrace") -> (
    match Lockpass.nolabel_args args with
    | a :: _ -> (
      match (strip a).pexp_desc with
      | Pexp_construct ({ txt; _ }, arg) ->
        let m =
          SM.singleton
            (resolve_exn ctx.t node.env ~fn:node.fn txt)
            { via = None; line }
        in
        (match arg with
        | Some ae -> union m (eval ctx node rebinds ae)
        | None -> m)
      | Pexp_ident { txt = Longident.Lident v; _ }
        when List.mem_assoc v rebinds ->
        (* [raise e] of the handler-bound exception: re-raises exactly
           what the arm caught. *)
        List.assoc v rebinds
      | _ -> SM.singleton any_exn { via = None; line })
    | [] -> SM.singleton any_exn { via = None; line })
  | Some n when List.mem n Callgraph.spawn_like ->
    (* The closure runs in another process: evaluate it for its own
       findings, but its raises never reach the spawner. *)
    List.iter (fun (_, a) -> ignore (eval ctx node rebinds a)) args;
    SM.empty
  | Some n ->
    let m =
      List.fold_left
        (fun acc exn ->
          if SM.mem exn acc then acc
          else SM.add exn { via = Some n; line } acc)
        (eval_args ()) (callee_raises ctx n)
    in
    m
  | None -> union (eval ctx node rebinds f) (eval_args ())

(* [try]/[match-exception] handler semantics over a body's raise map;
   also hosts the swallowed-control-exn and unmapped-wire-error
   checks, which are properties of individual arms. *)
and handle ctx node rebinds ~body_map ~cases =
  let remaining = ref body_map in
  let out = ref SM.empty in
  List.iter
    (fun c ->
      let shape = shape_of_pat ctx.t node.env ~fn:node.fn c.pc_lhs in
      let caught =
        if shape.a_all then !remaining
        else SM.filter (fun k _ -> List.mem k shape.a_ctors) !remaining
      in
      let rebinds' =
        match shape.a_bound with
        | Some v -> (v, caught) :: rebinds
        | None -> rebinds
      in
      (match c.pc_guard with
      | Some g -> out := union !out (eval ctx node rebinds' g)
      | None -> ());
      let arm_map = eval ctx node rebinds' c.pc_rhs in
      let guarded = c.pc_guard <> None in
      if ctx.emit && (not guarded) && shape.a_all then begin
        let swallowed =
          List.filter
            (fun cx -> SM.mem cx caught && not (SM.mem cx arm_map))
            control_exns
        in
        match swallowed with
        | [] -> ()
        | exn :: _ ->
          finding ctx
            (Finding.v ~symbol:node.fn
               ~witness:[ witness_of ctx node exn (SM.find exn caught) ]
               ~rule:"swallowed-control-exn" ~file:node.file
               ~line:(Callgraph.line_of_loc c.pc_lhs.ppat_loc)
               ~slug:exn
               (Printf.sprintf
                  "catch-all arm absorbs the %s control exception without \
                   re-raising it; a killed process would survive its kill \
                   point — match it explicitly and re-raise"
                  exn))
      end;
      if ctx.emit && not guarded then check_unmapped ctx node c caught;
      if not guarded then
        remaining :=
          (if shape.a_all then SM.empty
           else
             SM.filter (fun k _ -> not (List.mem k shape.a_ctors)) !remaining);
      out := union !out arm_map)
    cases;
  union !remaining !out

(* A dispatcher's handler arm that routes through an error mapper:
   everything the arm can catch that the mapper only catch-alls is a
   wire error the protocol cannot name. *)
and check_unmapped ctx node c caught =
  match List.assoc_opt node.Callgraph.fn ctx.dispatch_sites with
  | None -> ()
  | Some (decl, _) -> (
    match mapper_in ctx node c.pc_rhs with
    | None -> ()
    | Some (mname, mapped) ->
      SM.iter
        (fun exn o ->
          (* Only exceptions this codebase declares: a stdlib
             Not_found falling into the mapper's catch-all is a
             programming error, not missing wire vocabulary. *)
          if
            exn <> any_exn
            && (not (List.mem exn control_exns))
            && SS.mem exn ctx.t.exn_decls
            && not (SS.mem exn mapped)
          then
            finding ctx
              (Finding.v ~symbol:node.fn
                 ~witness:
                   [
                     witness_of ctx node exn o;
                     Printf.sprintf
                       "error mapper %s has no arm for it (declared wire \
                        errors at %s:%d)"
                       mname decl.Protocol.d_file decl.Protocol.d_line;
                   ]
                 ~rule:"unmapped-wire-error" ~file:node.file
                 ~line:(Callgraph.line_of_loc c.pc_lhs.ppat_loc)
                 ~slug:exn
                 (Printf.sprintf
                    "exception %s can reach dispatcher %s but %s maps it \
                     only through the catch-all; add an explicit arm so the \
                     wire protocol names the failure"
                    exn node.fn mname)))
        caught)

and mapper_in ctx node e =
  let found = ref None in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_ident { txt; _ } -> (
            let n =
              Names.resolve_lid node.Callgraph.env
                ~defined:(Callgraph.defined ctx.t.graph)
                txt
            in
            match Hashtbl.find_opt ctx.mappers n with
            | Some mapped when !found = None -> found := Some (n, mapped)
            | _ -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it e;
  !found

(* ------------------------------------------------------------------ *)
(* Effect scan: leak-on-raise and ivar-unfilled-on-raise               *)
(* ------------------------------------------------------------------ *)

(* Lockpass-style abstract walk in evaluation order, tracking the
   held tokens, the enclosing handlers, the enclosing [Fun.protect]
   depth, and whether an escaping raise is already possible on the
   current path. *)

type est = {
  mutable lm : bool;
  mutable held : string list;
  mutable raised : bool;
  mutable raise_info : (string * string * int) option;
      (* exn, source callee ("" = direct raise), line *)
}

let scan_effects ctx (node : Callgraph.node) =
  let fn = node.fn in
  let scoped =
    (* A function that intentionally returns holding (2PL) is judged
       by its caller's release discipline, not here. *)
    match Hashtbl.find_opt ctx.lock.Lockpass.summaries fn with
    | Some s -> not s.Lockpass.holds_on_return
    | None -> true
  in
  let st = { lm = false; held = []; raised = false; raise_info = None } in
  let protect = ref 0 in
  let handlers = ref [] in
  let leak_reported = ref [] in
  let ivar_reported = ref false in
  let escaping names =
    List.filter
      (fun exn ->
        not
          (List.exists
             (fun (all, cs) -> all || List.mem exn cs)
             !handlers))
      names
  in
  let at_raise_point ~callee names line =
    match escaping names with
    | [] -> ()
    | exn :: _ ->
      if st.raise_info = None then st.raise_info <- Some (exn, callee, line);
      st.raised <- true;
      if !protect = 0 && scoped && (st.lm || st.held <> []) then begin
        let tok =
          match st.held with tok :: _ -> tok | [] -> "Lock_manager grant"
        in
        if not (List.mem tok !leak_reported) then begin
          leak_reported := tok :: !leak_reported;
          let source =
            if callee = "" then Printf.sprintf "a raise at %s:%d" node.file line
            else
              Printf.sprintf "%s (%s)" callee
                (String.concat " -> " (fn :: chain ctx.t callee exn))
          in
          finding ctx
            (Finding.v ~symbol:fn
               ~witness:
                 [
                   Printf.sprintf "held here: %s"
                     (String.concat ", "
                        (if st.held = [] then [ "Lock_manager grant" ]
                         else st.held));
                   Printf.sprintf "escaping %s from %s" exn source;
                 ]
               ~rule:"leak-on-raise" ~file:node.file ~line ~slug:tok
               (Printf.sprintf
                  "token %s is held when %s may raise %s with no release on \
                   the raise path; wrap the critical section in Fun.protect \
                   or Sim.Semaphore.with_acquire"
                  tok
                  (if callee = "" then "this path" else callee)
                  exn))
        end
      end
  in
  let add_tok tok =
    if not (List.mem tok st.held) then st.held <- st.held @ [ tok ]
  in
  let snap () = (st.lm, st.held, st.raised, st.raise_info) in
  let restore (lm, held, raised, ri) =
    st.lm <- lm;
    st.held <- held;
    st.raised <- raised;
    st.raise_info <- ri
  in
  let rec scan e =
    match e.pexp_desc with
    | Pexp_sequence (a, b) ->
      scan a;
      scan b
    | Pexp_ifthenelse (c, th, el) ->
      scan c;
      branch ~include_pre:(el = None) (th :: Option.to_list el)
    | Pexp_try (b, cases) ->
      with_handlers cases (fun () -> scan b);
      branch ~include_pre:true
        (List.concat_map
           (fun c -> Option.to_list c.pc_guard @ [ c.pc_rhs ])
           cases)
    | Pexp_match (scrut, cases) ->
      let exn_cases = List.filter is_exception_case cases in
      if exn_cases = [] then scan scrut
      else
        with_handlers
          (List.map strip_exception_case exn_cases)
          (fun () -> scan scrut);
      branch ~include_pre:false
        (List.concat_map
           (fun c -> Option.to_list c.pc_guard @ [ c.pc_rhs ])
           cases)
    | Pexp_function cases ->
      branch ~include_pre:true
        (List.concat_map
           (fun c -> Option.to_list c.pc_guard @ [ c.pc_rhs ])
           cases)
    | Pexp_while (c, b) ->
      scan c;
      scan b
    | Pexp_apply (f, args) -> apply_eff e f args
    | _ -> fallback e
  and fallback e =
    let it =
      { Ast_iterator.default_iterator with expr = (fun _ e' -> scan e') }
    in
    Ast_iterator.default_iterator.expr it e
  and with_handlers cases body =
    let shapes =
      List.filter_map
        (fun c ->
          if c.pc_guard <> None then None
          else
            Some (shape_of_pat ctx.t node.Callgraph.env ~fn c.pc_lhs))
        cases
    in
    let combined =
      ( List.exists (fun s -> s.a_all) shapes,
        List.concat_map (fun s -> s.a_ctors) shapes )
    in
    handlers := combined :: !handlers;
    body ();
    handlers := List.tl !handlers
  and branch ~include_pre exprs =
    match exprs with
    | [] -> ()
    | _ ->
      let pre = snap () in
      let posts =
        List.map
          (fun e ->
            restore pre;
            scan e;
            snap ())
          exprs
      in
      let posts = if include_pre then pre :: posts else posts in
      st.lm <- List.exists (fun (lm, _, _, _) -> lm) posts;
      st.raised <- List.exists (fun (_, _, r, _) -> r) posts;
      st.raise_info <-
        List.fold_left
          (fun acc (_, _, _, ri) ->
            match acc with Some _ -> acc | None -> ri)
          None posts;
      st.held <-
        List.fold_left
          (fun acc (_, held, _, _) ->
            List.fold_left
              (fun acc t -> if List.mem t acc then acc else acc @ [ t ])
              acc held)
          [] posts
  and apply_eff e f args =
    let line = Callgraph.line_of_loc e.pexp_loc in
    match Callgraph.callee_name ctx.t.graph node.Callgraph.env f with
    | Some ("raise" | "raise_notrace") ->
      let names =
        match Lockpass.nolabel_args args with
        | a :: _ -> (
          match (strip a).pexp_desc with
          | Pexp_construct ({ txt; _ }, _) ->
            [ resolve_exn ctx.t node.Callgraph.env ~fn txt ]
          | _ -> [ any_exn ])
        | [] -> [ any_exn ]
      in
      at_raise_point ~callee:"" names line
    | Some n when List.mem n Callgraph.spawn_like ->
      (* Each spawned closure is its own process: fresh state, and
         nothing it does flows back to the spawner's path. *)
      List.iter
        (fun (_, a) ->
          let saved = (snap (), !protect, !handlers) in
          st.lm <- false;
          st.held <- [];
          st.raised <- false;
          st.raise_info <- None;
          protect := 0;
          handlers := [];
          scan a;
          let s, p, h = saved in
          restore s;
          protect := p;
          handlers := h)
        args
    | Some "Fun.protect" ->
      incr protect;
      List.iter scan (Lockpass.nolabel_args args);
      decr protect;
      List.iter
        (fun (l, a) ->
          match l with
          | Asttypes.Labelled "finally" | Asttypes.Optional "finally" ->
            (* The finally thunk runs on every path: an earlier raise
               cannot skip an [Ivar.fill] that lives here (only a
               raise within the thunk itself still can). *)
            let raised = st.raised and ri = st.raise_info in
            st.raised <- false;
            st.raise_info <- None;
            scan a;
            st.raised <- raised;
            st.raise_info <- ri
          | _ -> ())
        args
    | Some n when n = Lockpass.sem_with_acquire ->
      (* Structurally protected: the token cannot leak, and like
         Fun.protect the enclosing tokens are assumed released by the
         combinator discipline. *)
      at_raise_point ~callee:n (callee_raises ctx n) line;
      incr protect;
      List.iter (fun (_, a) -> scan a) args;
      decr protect
    | Some n when List.mem n Lockpass.lm_acquires ->
      List.iter (fun (_, a) -> scan a) args;
      at_raise_point ~callee:n (callee_raises ctx n) line;
      st.lm <- true;
      (match Lockpass.nolabel_args args with
      | _ :: item :: _ -> (
        match Lockpass.render_item item with
        | Some tok -> add_tok tok
        | None -> ())
      | _ -> ())
    | Some n when n = Lockpass.lm_release ->
      List.iter (fun (_, a) -> scan a) args;
      st.lm <- false;
      st.held <- List.filter Lockpass.is_sem_token st.held
    | Some n when n = Lockpass.sem_acquire ->
      List.iter (fun (_, a) -> scan a) args;
      at_raise_point ~callee:n (callee_raises ctx n) line;
      (match Lockpass.nolabel_args args with
      | sem :: _ -> (
        match Lockpass.render_sem sem with
        | Some tok -> add_tok tok
        | None -> ())
      | _ -> ())
    | Some n when n = Lockpass.sem_release ->
      List.iter (fun (_, a) -> scan a) args;
      (match Lockpass.nolabel_args args with
      | sem :: _ -> (
        match Lockpass.render_sem sem with
        | Some tok -> st.held <- List.filter (fun t -> t <> tok) st.held
        | None -> ())
      | _ -> ())
    | Some "Sim.Ivar.fill" ->
      List.iter (fun (_, a) -> scan a) args;
      if st.raised && not !ivar_reported then begin
        ivar_reported := true;
        let why =
          match st.raise_info with
          | Some (exn, "", l) ->
            Printf.sprintf "an earlier raise of %s at %s:%d can skip it" exn
              node.file l
          | Some (exn, callee, l) ->
            Printf.sprintf
              "an earlier call to %s (%s:%d) can raise %s and skip it"
              callee node.file l exn
          | None -> "an earlier escaping raise can skip it"
        in
        finding ctx
          (Finding.v ~symbol:fn ~witness:[ why ]
             ~rule:"ivar-unfilled-on-raise" ~file:node.file ~line
             ~slug:"Sim.Ivar.fill"
             (Printf.sprintf
                "Ivar.fill is only reached when no earlier call raises — %s \
                 and strands every reader; fill from the handler or a \
                 Fun.protect finally"
                why))
      end
    | Some n ->
      List.iter (fun (_, a) -> scan a) args;
      at_raise_point ~callee:n (callee_raises ctx n) line;
      (match Hashtbl.find_opt ctx.lock.Lockpass.summaries n with
      | Some gs when Callgraph.defined ctx.t.graph n ->
        if gs.Lockpass.holds_on_return then begin
          st.lm <- true;
          List.iter (fun (v, _) -> add_tok v) gs.Lockpass.acquires
        end
        else if gs.Lockpass.releases then begin
          st.lm <- false;
          st.held <- List.filter Lockpass.is_sem_token st.held
        end
      | _ -> ())
    | None ->
      scan f;
      List.iter (fun (_, a) -> scan a) args
  in
  match node.Callgraph.body with Some b -> scan b | None -> ()

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let dispatch_escape_findings ctx =
  List.iter
    (fun (_, (decl, site)) ->
      match Hashtbl.find_opt ctx.t.raise_maps site.Protocol.s_fn with
      | None -> ()
      | Some m ->
        SM.iter
          (fun exn o ->
            if exn <> any_exn && not (List.mem exn control_exns) then
              match Callgraph.node ctx.t.graph site.Protocol.s_fn with
              | None -> ()
              | Some node ->
                finding ctx
                  (Finding.v ~symbol:site.Protocol.s_fn
                     ~witness:
                       [
                         witness_of ctx node exn o;
                         Printf.sprintf "%s.%s dispatched at %s:%d"
                           decl.Protocol.d_module decl.Protocol.d_type
                           site.Protocol.s_file site.Protocol.s_line;
                       ]
                     ~rule:"escaping-raise-into-dispatch"
                     ~file:site.Protocol.s_file ~line:site.Protocol.s_line
                     ~slug:exn
                     (Printf.sprintf
                        "exception %s can escape request dispatcher %s, \
                         killing the serving process instead of answering \
                         Err; catch it and encode a wire error"
                        exn site.Protocol.s_fn)))
          !m)
    ctx.dispatch_sites

let run graph (lock : Lockpass.result) =
  let t =
    {
      graph;
      exn_decls = collect_exn_decls graph.Callgraph.files;
      raise_maps = Hashtbl.create 256;
    }
  in
  let ctx =
    {
      t;
      lock;
      dispatch_sites =
        List.map
          (fun (d, s) -> (s.Protocol.s_fn, (d, s)))
          (Protocol.dispatchers graph);
      mappers = Hashtbl.create 8;
      emit = false;
      changed = true;
      findings = [];
    }
  in
  Hashtbl.iter (fun k v -> Hashtbl.replace ctx.mappers k v)
    (collect_mappers t);
  let rounds = ref 0 in
  while ctx.changed && !rounds < 32 do
    ctx.changed <- false;
    incr rounds;
    List.iter
      (fun (n : Callgraph.node) ->
        match n.body with
        | None -> ()
        | Some b ->
          let m = eval ctx n [] b in
          let cur = map_of t n.fn in
          let merged = union !cur m in
          if SM.cardinal merged <> SM.cardinal !cur then begin
            cur := merged;
            ctx.changed <- true
          end)
      (Callgraph.nodes_in_order graph)
  done;
  ctx.emit <- true;
  List.iter
    (fun (n : Callgraph.node) ->
      (match n.body with
      | None -> ()
      | Some b -> ignore (eval ctx n [] b));
      scan_effects ctx n)
    (Callgraph.nodes_in_order graph);
  dispatch_escape_findings ctx;
  (t, Finding.sort ctx.findings)

let raises t fn =
  match Hashtbl.find_opt t.raise_maps fn with
  | None -> []
  | Some m -> List.map fst (SM.bindings !m)
