(** Whole-program symbol table and interprocedural call graph.

    A node is one value binding — top-level or inside a nested
    [module X = struct ... end] — named by its dotted module path
    ("Sim.Mailbox.recv", "Cluster.handle_request"). Top-level
    [let () = ...] init code gets a synthetic [_init_<line>] node.
    Edges are resolved call sites plus bare function references
    (a function handed to [List.iter] or [Fun.protect ~finally] runs
    on the caller's path); the closure arguments of [Sim.spawn] /
    [Sim.schedule] are excluded — they run in another process. *)

type node = {
  fn : string;  (** canonical dotted name, unique (suffixed on clash) *)
  file : string;
  line : int;
  body : Parsetree.expression option;
  env : Names.env;  (** the defining file's alias environment *)
  mutable calls : (string * int) list;  (** resolved callee, line *)
}

type t = {
  nodes : (string, node) Hashtbl.t;
  order : string list;
  files : Source.file list;
}

val build : Source.file list -> t
(** Unparseable files contribute no nodes (the driver text-lints them
    instead). *)

val node : t -> string -> node option

val defined : t -> string -> bool

val nodes_in_order : t -> node list

val callee_of_expr :
  Names.env -> defined:(string -> bool) -> Parsetree.expression -> string option
(** Classify a callee expression: an identifier path (resolved), or a
    qualified [Service_conn] record-field access (an RPC call,
    returned as ["Service_conn.<field>"]). [None] for anything
    else. *)

val callee_name : t -> Names.env -> Parsetree.expression -> string option
(** {!callee_of_expr} against this graph's definitions. *)

val conn_fields : string list

val spawn_like : string list

val line_of_loc : Location.t -> int
