open Parsetree

type node = {
  fn : string;
  file : string;
  line : int;
  body : expression option;
  env : Names.env;
  mutable calls : (string * int) list;
}

type t = {
  nodes : (string, node) Hashtbl.t;
  order : string list;  (* node names in definition order *)
  files : Source.file list;
}

let line_of_loc (loc : Location.t) = loc.loc_start.pos_lnum

(* ------------------------------------------------------------------ *)
(* Symbol collection                                                   *)
(* ------------------------------------------------------------------ *)

let rec binding_name pat =
  match pat.ppat_desc with
  | Ppat_var { txt; _ } -> Some txt
  | Ppat_constraint (p, _) -> binding_name p
  | _ -> None

let rec collect_aliases acc prefix_done items =
  ignore prefix_done;
  match items with
  | [] -> acc
  | item :: rest ->
    let acc =
      match item.pstr_desc with
      | Pstr_module { pmb_name = { txt = Some name; _ }; pmb_expr; _ } -> (
        match pmb_expr.pmod_desc with
        | Pmod_ident { txt; _ } -> (name, Names.flatten txt) :: acc
        | _ -> acc)
      | _ -> acc
    in
    collect_aliases acc prefix_done rest

(* Every value binding, at top level or inside a nested
   [module X = struct ... end], becomes a node named by its dotted
   module path. Top-level [let () = ...] initialisation code gets a
   synthetic [_init] node so calls made at module init are not lost. *)
let rec collect_defs ~file ~env ~prefix acc items =
  List.fold_left
    (fun acc item ->
      match item.pstr_desc with
      | Pstr_value (_, vbs) ->
        List.fold_left
          (fun acc vb ->
            let line = line_of_loc vb.pvb_loc in
            let name =
              match binding_name vb.pvb_pat with
              | Some n -> prefix ^ "." ^ n
              | None -> Printf.sprintf "%s._init_%d" prefix line
            in
            { fn = name; file; line; body = Some vb.pvb_expr; env; calls = [] }
            :: acc)
          acc vbs
      | Pstr_eval (e, _) ->
        let line = line_of_loc item.pstr_loc in
        {
          fn = Printf.sprintf "%s._init_%d" prefix line;
          file;
          line;
          body = Some e;
          env;
          calls = [];
        }
        :: acc
      | Pstr_module { pmb_name = { txt = Some name; _ }; pmb_expr; _ } ->
        collect_module ~file ~env ~prefix:(prefix ^ "." ^ name) acc pmb_expr
      | Pstr_recmodule mbs ->
        List.fold_left
          (fun acc mb ->
            match mb.pmb_name.txt with
            | Some name ->
              collect_module ~file ~env ~prefix:(prefix ^ "." ^ name) acc
                mb.pmb_expr
            | None -> acc)
          acc mbs
      | _ -> acc)
    acc items

and collect_module ~file ~env ~prefix acc mexpr =
  match mexpr.pmod_desc with
  | Pmod_structure items -> collect_defs ~file ~env ~prefix acc items
  | Pmod_constraint (m, _) -> collect_module ~file ~env ~prefix acc m
  | _ -> acc

(* ------------------------------------------------------------------ *)
(* Callee classification                                               *)
(* ------------------------------------------------------------------ *)

(* Fields of the Service_conn connection records: a call through one
   of them is a client->server RPC, the canonical remote-blocking
   primitive of the may-block pass. Detection requires the field
   access to be module-qualified ([t.conn.Service_conn.pread]), which
   is how a cross-library record field must be written anyway. *)
let conn_fields =
  [
    "resolve"; "bind"; "unbind"; "mkdir"; "create_file"; "open_file";
    "close_file"; "delete_file"; "pread"; "pread_stream"; "pwrite";
    "get_attributes"; "truncate"; "tbegin"; "tcreate"; "topen"; "tclose";
    "tdelete"; "tread"; "twrite"; "tget_attribute"; "tend"; "tabort";
  ]

let callee_of_expr env ~defined e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> Some (Names.resolve_lid env ~defined txt)
  | Pexp_field (_, { txt; _ }) -> (
    match Names.flatten txt with
    | [ _ ] -> None (* unqualified field: not provably a conn field *)
    | path ->
      let c = Names.canonical env path in
      let is_conn =
        List.exists (fun f -> c = "Service_conn." ^ f) conn_fields
      in
      if is_conn then Some c else None)
  | _ -> None

(* Arguments of these run in a fresh process or a deferred callback,
   not on the caller's path: their blocking behaviour must not be
   attributed to the spawning function. *)
let spawn_like =
  [ "Sim.spawn"; "Sim.spawn_at"; "Sim.schedule"; "Sim.schedule_cancellable" ]

(* ------------------------------------------------------------------ *)
(* Call extraction                                                     *)
(* ------------------------------------------------------------------ *)

let collect_calls ~env ~defined body =
  let acc = ref [] in
  let add name line =
    if String.contains name '.' || defined name then acc := (name, line) :: !acc
  in
  let iter = ref Ast_iterator.default_iterator in
  let expr it (e : expression) =
    match e.pexp_desc with
    | Pexp_apply (f, args) -> (
      let callee = callee_of_expr env ~defined f in
      (match callee with
      | Some n -> add n (line_of_loc e.pexp_loc)
      | None -> it.Ast_iterator.expr it f);
      match callee with
      | Some n when List.mem n spawn_like ->
        (* Skip the argument subtrees: the closure runs elsewhere. *)
        ()
      | _ -> List.iter (fun (_, a) -> it.Ast_iterator.expr it a) args)
    | Pexp_ident { txt; _ } ->
      (* A bare reference (function passed as a value, e.g. to
         [List.iter] or [Fun.protect ~finally]) counts as a call: the
         typical higher-order wrappers run it on the caller's path. *)
      add (Names.resolve_lid env ~defined txt) (line_of_loc e.pexp_loc)
    | _ -> Ast_iterator.default_iterator.expr it e
  in
  iter := { Ast_iterator.default_iterator with expr };
  !iter.Ast_iterator.expr !iter body;
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* Graph construction                                                  *)
(* ------------------------------------------------------------------ *)

let build (files : Source.file list) =
  let known_roots = List.map (fun f -> f.Source.module_name) files in
  let all_nodes =
    List.concat_map
      (fun (f : Source.file) ->
        match f.ast with
        | None -> []
        | Some items ->
          let aliases = collect_aliases [] true items in
          let env =
            Names.make_env ~current_module:f.module_name ~aliases ~known_roots
          in
          List.rev
            (collect_defs ~file:f.path ~env ~prefix:f.module_name [] items))
      files
  in
  let nodes = Hashtbl.create 256 in
  let order =
    List.map
      (fun n ->
        let name =
          if Hashtbl.mem nodes n.fn then
            Printf.sprintf "%s#%d" n.fn n.line
          else n.fn
        in
        let n = { n with fn = name } in
        Hashtbl.replace nodes name n;
        name)
      all_nodes
  in
  let defined name = Hashtbl.mem nodes name in
  Hashtbl.iter
    (fun _ n ->
      match n.body with
      | Some body -> n.calls <- collect_calls ~env:n.env ~defined body
      | None -> ())
    nodes;
  { nodes; order; files }

let node t name = Hashtbl.find_opt t.nodes name
let defined t name = Hashtbl.mem t.nodes name
let nodes_in_order t = List.filter_map (node t) t.order

let callee_name t env e =
  callee_of_expr env ~defined:(fun n -> defined t n) e
