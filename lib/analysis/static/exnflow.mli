(** Interprocedural exception flow over the call graph.

    Per function, the may-raise set: syntactic [raise]s, a table of
    implicit stdlib raisers ([Option.get], [Hashtbl.find],
    [failwith], ...), and the declared raises of the blocking
    primitives (every suspension point can deliver [Sim.Killed]; the
    RPC client adds [Net.Rpc.Timeout]), propagated through calls to a
    fixpoint. [try ... with] arms subtract the constructors they
    match, catch-all arms subtract everything, and an arm's own
    raises — including [raise e] of the bound exception — flow back
    out.

    Rules emitted, each with a witness chain:

    - [swallowed-control-exn] — a catch-all arm that can absorb
      [Sim.Killed] without re-raising it;
    - [leak-on-raise] — a lock/semaphore token held at a call that
      may raise uncaught, with no enclosing [Fun.protect] (composed
      with {!Lockpass} summaries);
    - [ivar-unfilled-on-raise] — an [Ivar.fill] reachable only after
      a possibly-raising point on the same path;
    - [unmapped-wire-error] — an exception reaching a request
      dispatcher's handler arm that the [E_*] error mapper only
      catch-alls (composed with {!Protocol} dispatchers);
    - [escaping-raise-into-dispatch] — an exception escaping a
      request dispatcher entirely, killing the serving process.

    Approximations are documented in DESIGN.md section 4b''':
    lambdas are inlined at their definition point, [assert] is
    ignored, guarded handler arms neither subtract nor swallow, any
    enclosing [Fun.protect] absolves a leak, and spawn-like closure
    arguments are analysed in a fresh context. *)

type t
(** The computed raise sets. *)

val control_exns : string list
(** Exceptions that are process-control signals ([Sim.Killed]):
    swallowing one is a finding, and they are exempt from the
    dispatcher rules (a dispatcher must die at its kill point). *)

val any_exn : string
(** The ["*"] element: an unresolvable [raise e] — escapes every
    handler except a catch-all. *)

val run : Callgraph.t -> Lockpass.result -> t * Finding.t list

val raises : t -> string -> string list
(** The may-raise set of a function, as canonical constructor names
    (sorted). May include {!any_exn}. *)

val chain : t -> string -> string -> string list
(** [chain t fn exn] — a witness call path from [fn] to the function
    that raises [exn] directly (or to the primitive's name). *)
