(** Static shared-state race detection: spawn-escape analysis plus
    interprocedural must-lockset inference, Eraser-style.

    The pass builds a {b shared-mutable inventory} of abstract
    locations — module-level refs/[Hashtbl]s/[Queue]s/[Buffer]s
    ([global:Mod.name]), mutable record fields and record fields
    initialised with a raw container ([field:Mod.name], qualified by
    the declaring module; an access resolves through its qualifier,
    then the accessing module, then the unique declaring module),
    function-local mutables that escape into closures
    ([ref:fn:name], instance-sensitive: only roots created inside the
    owning activation — its spawned closures and its own
    continuation — can share one instance), and [Sim.Cell] instances
    ([cell:name], named by the binding or record field holding the
    cell) — then discovers every
    {b concurrency root}: the closure argument of each
    [Sim.spawn]/[Sim.schedule] site (with a multiplicity of 2 when
    the site sits in a loop, a higher-order closure, a local function
    used more than once, or a function with several callers), each
    closure field of a [Service_conn] record (a server handler,
    invoked by any number of remote clients), and the spawning
    function's own continuation (only its accesses {e after} the
    first spawn count — setup before any concurrency exists cannot
    race).

    A location {b escapes} when the multiplicities of the roots that
    reach it (through the call graph) sum to two or more. Escape
    alone is not racy under the cooperative scheduler: execution is
    atomic between blocking points, so a location is only {b exposed}
    (and reportable) when some activation holds a {e torn window} —
    it touches the location both before and after a call that may
    suspend (read / yield / write is the canonical lost update).
    Lone atomic accesses, however many tasks make them, cannot
    interleave mid-invariant. At every
    access site the pass computes the {b must-held lockset}: lock
    tokens from [Lock_manager.acquire] (not [try_acquire], which may
    fail), semaphore tokens, the pseudo-token of the enclosing
    [Sim.Cell.update] (the RMW is atomic w.r.t. that cell), and
    [ivar:] handoff tokens ([Ivar.read] happens-after the [fill], so
    the read side holds the token from the read on, and the fill side
    holds it for accesses before the fill). Branch merges intersect;
    function entry locksets are the meet over all call sites,
    propagated to a fixpoint with roots starting empty.

    Rules (all witnessed):

    - [static-race] — an escaped raw location (global or field) with
      at least one counted write and an empty lockset intersection
      across its access sites;
    - [unsynchronized-cell-write] — a Data-role cell written from
      two or more roots with an empty lockset intersection (Sync and
      unknown-role cells are the dynamic sanitizer's jurisdiction;
      consistent [Sim.Cell.update] use protects itself);
    - [unmonitored-shared-state] — a module-level raw mutable written
      from concurrent roots: even if lock-protected it is invisible
      to the sanitizer and must move into a cell (supersedes the
      token-level [global-mutable-state] lint with real
      reachability).

    Soundness caveats (DESIGN.md section 4b''''): fields unify by
    name within a module (two record types in one module sharing a
    field name are one location) and an ambiguous cross-module field
    access (several declaring modules, none matching) is skipped; a
    spawned wrapper that spawns its function argument ([Net.spawn_on]
    style) is not traced through; the torn-window gate is
    single-location (an invariant spanning two locations broken
    across a yield is not modelled) and uses scan order within an
    activation as program order; [Sim.Cell.peek] is exempt by
    contract; and the
    simulator core ([sim.ml], [prio_queue.ml], [timing_wheel.ml]) and
    the observability plane ([lib/obs]) are outside the model's
    jurisdiction. *)

type kind = Global | Field | Cell

type role = Data | Sync | Unknown

type access = {
  a_fn : string;  (** enclosing function or root id *)
  a_file : string;
  a_line : int;
  a_write : bool;
  a_locks : string list;  (** must-held lockset, sorted *)
}

type location = {
  l_id : string;  (** ["global:…"], ["field:…"] or ["cell:…"] *)
  l_kind : kind;
  l_role : role;  (** cells only; [Unknown] for raw locations *)
  l_cell_name : string option;
      (** the [~name] string literal at the create site, when static —
          matches the dynamic sanitizer's cell naming *)
  l_file : string;
  l_line : int;  (** declaration / creation anchor *)
  l_roots : (string * int) list;  (** root id, multiplicity; sorted *)
  l_accesses : access list;  (** counted (root-reachable) sites *)
  l_locks : string list;
      (** lockset intersection across counted sites — the inferred
          protection of this location *)
}

type result = {
  findings : Finding.t list;
  locations : location list;
      (** every escaped location, sorted by id — the protection map *)
}

val run : Callgraph.t -> Mayblock.t -> Lockpass.result -> result
(** The may-block results drive the yield gate: only functions that
    can suspend expose their accesses to interleaving. *)

val locations_to_json : location list -> string
(** The protection map as a JSON array (location, kind, role, decl,
    roots, inferred locks, access sites). *)

val exempt_file : string -> bool
(** Simulator-core and observability files outside the model. *)
