(** Wire-protocol coverage: every constructor of a variant type named
    [request] or [response] must have an arm in its dispatcher — the
    match site covering the most of that type's constructors. The
    rule fires per missing constructor, but only when the best site
    covers at least half of the type (small result-extractor matches
    like [expect_int] are not dispatchers). *)

type decl = {
  d_module : string;
  d_type : string;  (** "request" or "response" *)
  d_file : string;
  d_line : int;
  d_ctors : string list;
}
(** A protocol variant declaration. *)

type site = {
  s_fn : string;
  s_file : string;
  s_line : int;
  s_ctors : string list;  (** head constructors matched *)
  s_wildcard : bool;
}
(** A match site, as a candidate dispatcher. *)

val run : Callgraph.t -> Finding.t list

val dispatchers : Callgraph.t -> (decl * site) list
(** Every match site covering at least half of a [request]
    declaration's constructors — including fully covered ones, which
    [run] does not report on, and including pure label/route matches
    (they raise nothing, so they stay silent downstream). Consumed by
    the exception-flow pass: an exception escaping one of these
    sites' functions kills the serving process. *)
