(** Wire-protocol coverage: every constructor of a variant type named
    [request] or [response] must have an arm in its dispatcher — the
    match site covering the most of that type's constructors. The
    rule fires per missing constructor, but only when the best site
    covers at least half of the type (small result-extractor matches
    like [expect_int] are not dispatchers). *)

val run : Callgraph.t -> Finding.t list
