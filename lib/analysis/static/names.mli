(** Name canonicalisation for the whole-program passes.

    Call sites reach the same function under many spellings:
    [Rhodos_txn.Lock_manager.acquire], [Lock_manager.acquire], or an
    aliased [Lm.acquire] (from a top-level [module Lm = ...]). Every
    pass works on one canonical form: alias-expanded, library-wrapper
    ([Rhodos_*]) components dropped, and cut at the first component
    naming a module whose source was parsed. *)

type env

val make_env :
  current_module:string ->
  aliases:(string * string list) list ->
  known_roots:string list ->
  env
(** [aliases] are the file's top-level [module X = Path] bindings;
    [known_roots] the module names of every parsed source file. *)

val flatten : Longident.t -> string list

val last : Longident.t -> string

val canonical : env -> string list -> string

val canonical_lid : env -> Longident.t -> string

val resolve : env -> defined:(string -> bool) -> string list -> string
(** Resolution for call sites: prefer a definition in the current
    module for unqualified / inner-module paths, else the canonical
    form (which may name a seed primitive or an external). *)

val resolve_lid : env -> defined:(string -> bool) -> Longident.t -> string
