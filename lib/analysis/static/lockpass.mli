(** The sequential lock pass: an abstract interpretation of each
    function body in evaluation order, tracking which lock tokens are
    held.

    Produces three kinds of output:

    - [may-block-under-lock] findings — a call that may block ([Time]
      or [Remote] class) reached while a [Lock_manager] grant is
      held; the headline rule is lock-held-across-RPC;
    - [may-block-in-cell-update] findings — any blocking call inside
      a [Sim.Cell.update] read-modify-write closure;
    - a static lock-order graph whose edges are "token [u] held when
      token [v] acquired", composed through the call graph; cycles of
      two or more distinct tokens are reported as
      [lock-order-cycle] (potential ABBA deadlock) with one
      witnessing edge chain per cycle.

    Approximations: closures are inlined into the enclosing path
    ([Fun.protect] scans the body before the [~finally] closure);
    branches merge as the union of their post-states; [Sim.spawn]-like
    arguments are skipped (they run elsewhere); lock items whose
    arguments cannot be rendered statically set the held flag but
    join no order edges. *)

type token = string

type summary = {
  mutable acquires : (token * string list) list;
  mutable holds_on_return : bool;
  mutable releases : bool;
}

type edge = {
  e_from : token;
  e_to : token;
  e_file : string;
  e_line : int;
  e_witness : string;
}

type result = {
  findings : Finding.t list;
  edges : edge list;
  summaries : (string, summary) Hashtbl.t;
}

val run : Callgraph.t -> Mayblock.t -> result

(** {2 Shared vocabulary}

    The exception-flow pass tracks the same tokens through the same
    acquire/release primitives; exporting the canonical names and the
    token renderers keeps the two passes in agreement. *)

val lm_acquires : string list
val lm_release : string
val sem_acquire : string
val sem_release : string

val sem_with_acquire : string
(** [Sim.Semaphore.with_acquire] — scoped, release-on-raise by
    construction; both passes treat it as leak-free. *)

val nolabel_args :
  (Asttypes.arg_label * Parsetree.expression) list ->
  Parsetree.expression list

val render_path : Parsetree.expression -> string option
(** Render an identifier/record-field access path ("t.fetch_slots");
    [None] for anything more dynamic. *)

val render_item : Parsetree.expression -> token option
(** Render a [Lock_manager] item expression ("File_item 1",
    "Page_item(fid,i)"); [None] when an argument is dynamic. *)

val render_sem : Parsetree.expression -> token option
(** Render a semaphore acquisition path as a ["sem:"]-prefixed token. *)

val is_sem_token : token -> bool
