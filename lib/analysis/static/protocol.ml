open Parsetree

(* Wire-protocol coverage: match the constructors of the RPC
   [request] / [response] variant types against the match arms of the
   server-side dispatcher. A new request constructor with no handler
   arm silently falls into the dispatcher's wildcard and answers
   [Err]; this pass makes that a lint failure instead of a runtime
   surprise. *)

type decl = {
  d_module : string;
  d_type : string;  (* "request" or "response" *)
  d_file : string;
  d_line : int;
  d_ctors : string list;
}

type site = {
  s_fn : string;
  s_file : string;
  s_line : int;
  s_ctors : string list;  (* head constructors matched *)
  s_wildcard : bool;
}

let protocol_type_names = [ "request"; "response" ]

let decls_of_file (f : Source.file) =
  match f.Source.ast with
  | None -> []
  | Some items ->
    let acc = ref [] in
    let rec walk_items prefix items =
      List.iter
        (fun item ->
          match item.pstr_desc with
          | Pstr_type (_, tds) ->
            List.iter
              (fun td ->
                if List.mem td.ptype_name.txt protocol_type_names then
                  match td.ptype_kind with
                  | Ptype_variant ctors when ctors <> [] ->
                    acc :=
                      {
                        d_module = prefix;
                        d_type = td.ptype_name.txt;
                        d_file = f.Source.path;
                        d_line = Callgraph.line_of_loc td.ptype_loc;
                        d_ctors =
                          List.map (fun c -> c.pcd_name.txt) ctors;
                      }
                      :: !acc
                  | _ -> ())
              tds
          | Pstr_module { pmb_name = { txt = Some name; _ }; pmb_expr; _ }
            -> (
            match pmb_expr.pmod_desc with
            | Pmod_structure sub -> walk_items (prefix ^ "." ^ name) sub
            | _ -> ())
          | _ -> ())
        items
    in
    walk_items f.Source.module_name items;
    List.rev !acc

(* Head constructor of a match-arm pattern, looking through or-patterns,
   aliases and constraints. An or-pattern contributes every branch. *)
let rec head_ctors pat =
  match pat.ppat_desc with
  | Ppat_construct ({ txt; _ }, _) -> [ Names.last txt ]
  | Ppat_or (a, b) -> head_ctors a @ head_ctors b
  | Ppat_alias (p, _) | Ppat_constraint (p, _) | Ppat_open (_, p) ->
    head_ctors p
  | _ -> []

let rec is_wildcard pat =
  match pat.ppat_desc with
  | Ppat_any | Ppat_var _ -> true
  | Ppat_or (a, b) -> is_wildcard a || is_wildcard b
  | Ppat_alias (p, _) | Ppat_constraint (p, _) | Ppat_open (_, p) ->
    is_wildcard p
  | _ -> false

let sites_of_node (n : Callgraph.node) =
  match n.Callgraph.body with
  | None -> []
  | Some body ->
    let acc = ref [] in
    let add loc cases =
      let ctors = List.concat_map (fun c -> head_ctors c.pc_lhs) cases in
      let wildcard = List.exists (fun c -> is_wildcard c.pc_lhs) cases in
      if ctors <> [] then
        acc :=
          {
            s_fn = n.Callgraph.fn;
            s_file = n.Callgraph.file;
            s_line = Callgraph.line_of_loc loc;
            s_ctors = List.sort_uniq compare ctors;
            s_wildcard = wildcard;
          }
          :: !acc
    in
    let it =
      {
        Ast_iterator.default_iterator with
        expr =
          (fun it e ->
            (match e.pexp_desc with
            | Pexp_match (_, cases) | Pexp_function cases ->
              add e.pexp_loc cases
            | _ -> ());
            Ast_iterator.default_iterator.expr it e);
      }
    in
    it.Ast_iterator.expr it body;
    List.rev !acc

let inter a b = List.filter (fun x -> List.mem x b) a

(* The dispatcher for a protocol type is the match site covering the
   most of its constructors. The rule only fires when that site covers
   at least half of them but not all: a site matching one or two
   constructors (an [expect_int]-style result extractor) is not a
   dispatcher, and reporting against it would be noise. *)
let check_decl sites (d : decl) =
  let scored =
    List.map (fun s -> (List.length (inter s.s_ctors d.d_ctors), s)) sites
  in
  let best =
    List.fold_left
      (fun acc (k, s) ->
        match acc with
        | Some (bk, _) when bk >= k -> acc
        | _ -> Some (k, s))
      None scored
  in
  match best with
  | Some (covered, site)
    when covered * 2 >= List.length d.d_ctors
         && covered < List.length d.d_ctors ->
    let missing =
      List.filter (fun c -> not (List.mem c site.s_ctors)) d.d_ctors
    in
    List.map
      (fun ctor ->
        Finding.v ~symbol:site.s_fn
          ~witness:
            [
              Printf.sprintf "%s.%s declared at %s:%d" d.d_module d.d_type
                d.d_file d.d_line;
              Printf.sprintf "dispatcher %s (%s:%d) matches %d/%d \
                              constructors%s"
                site.s_fn site.s_file site.s_line covered
                (List.length d.d_ctors)
                (if site.s_wildcard then " plus a wildcard arm" else "");
            ]
          ~rule:"wire-protocol-coverage" ~file:site.s_file ~line:site.s_line
          ~slug:ctor
          (Printf.sprintf
             "constructor %s of %s.%s has no arm in dispatcher %s%s" ctor
             d.d_module d.d_type site.s_fn
             (if site.s_wildcard then
                " (it falls into the wildcard arm)"
              else ""))
      )
      missing
  | _ -> []

let run (graph : Callgraph.t) =
  let decls = List.concat_map decls_of_file graph.Callgraph.files in
  let sites =
    List.concat_map sites_of_node (Callgraph.nodes_in_order graph)
  in
  Finding.sort (List.concat_map (check_decl sites) decls)

(* The exception-flow pass needs to know which functions host a
   request dispatcher — same coverage scoring as [check_decl], but a
   fully covered dispatcher also counts (it still routes every
   request, so an escaping raise there still kills the serving
   process), and EVERY site matching a majority of the request
   constructors qualifies, not just the best one: a request type
   typically also has pure label/size/route matches, and picking a
   single winner among full-coverage ties would hide the real
   dispatcher behind whichever pure match came first. Non-raising
   sites cost the exception pass nothing. *)
let dispatchers (graph : Callgraph.t) =
  let decls = List.concat_map decls_of_file graph.Callgraph.files in
  let sites =
    List.concat_map sites_of_node (Callgraph.nodes_in_order graph)
  in
  List.concat_map
    (fun d ->
      if d.d_type <> "request" then []
      else
        List.filter_map
          (fun s ->
            let k = List.length (inter s.s_ctors d.d_ctors) in
            if k > 0 && k * 2 >= List.length d.d_ctors then Some (d, s)
            else None)
          sites)
    decls
