(** The may-block fixpoint: which functions can suspend the calling
    process, and why.

    Seeded with the simulator's blocking primitives ([Sim.sleep],
    [Mailbox.recv], semaphore/ivar/condition waits), the RPC layer
    ([Net.Rpc.call], [Net.recv*]) and RPC calls through
    [Service_conn] record fields; propagated over the call graph to a
    fixpoint. Each reason keeps the class of blocking:

    - [Lock]: waiting for a lock grant — ordinary 2PL, judged by the
      lock-order pass and never reported as blocking-under-lock;
    - [Time]: waiting on simulated time or another process (sleep,
      mailbox, condition, ivar);
    - [Remote]: a network round trip (RPC, endpoint receive).

    Lock-acquiring functions are opaque: callers inherit their [Lock]
    class only, not the [Time] cost of the lock manager's internals. *)

type cls = Lock | Time | Remote

val cls_to_string : cls -> string

val seeds : (string * cls) list

val acquire_specials : string list
(** Functions treated as opaque lock acquisitions. *)

val seed_class : string -> cls option
(** Class of a canonical name that is itself a primitive (including
    [Service_conn.<field>] pseudo-callees); [None] otherwise. *)

type t

val compute : Callgraph.t -> t

val reasons : t -> string -> (string * cls) list
(** Every (seed, class) reason a function may block. Works for seed
    names themselves as well as graph nodes. *)

val may_block : t -> string -> classes:cls list -> (string * cls) list
(** Reasons restricted to the given classes. *)

val chain : t -> string -> string -> string list
(** [chain t fn seed] — a witness call path from [fn] to [seed]. *)
