open Parsetree
module Lint = Rhodos_analysis.Lint

(* AST reimplementations of the token-based lint rules that exist in
   [Lint]. Same rule names, so one baseline and one suppression syntax
   cover both engines; the text versions remain the fallback for files
   that do not parse. Being syntax-directed, these versions do not
   trip over identifiers that merely contain a keyword, or over
   multi-line [let ... in] bindings — the token engine's known weak
   spots. *)

let line_of = Callgraph.line_of_loc

let rec strip e =
  match e.pexp_desc with
  | Pexp_constraint (e, _) | Pexp_open (_, e) -> strip e
  | _ -> e

let ident_path e =
  match (strip e).pexp_desc with
  | Pexp_ident { txt; _ } -> Some (Names.flatten txt)
  | _ -> None

(* The [global-mutable-state] AST port used to live here; the race
   pass's [unmonitored-shared-state] superseded it with real
   reachability (a global only fires when concurrent roots write it),
   so parseable sources no longer get the blanket token rule. *)

(* ------------------------------------------------------------------ *)
(* raw-shared-cell                                                     *)
(* ------------------------------------------------------------------ *)

let instrumented_fields = Lint.instrumented_fields

let raw_shared_cell (f : Source.file) items =
  match List.assoc_opt (Filename.basename f.Source.path) instrumented_fields with
  | None -> []
  | Some fields ->
    let acc = ref [] in
    let add loc fld what =
      acc :=
        Finding.v ~rule:"raw-shared-cell" ~file:f.Source.path
          ~line:(line_of loc) ~slug:fld
          (Printf.sprintf
             "raw %s of instrumented field t.%s bypasses the sanitizer; go \
              through Sim.Cell.get/update (peek for analysis-only reads)"
             what fld)
        :: !acc
    in
    let field_of e =
      match (strip e).pexp_desc with
      | Pexp_field (_, { txt; _ }) ->
        let fld = Names.last txt in
        if List.mem fld fields then Some fld else None
      | _ -> None
    in
    let it =
      {
        Ast_iterator.default_iterator with
        expr =
          (fun it e ->
            (match e.pexp_desc with
            | Pexp_setfield (_, { txt; _ }, _)
              when List.mem (Names.last txt) fields ->
              add e.pexp_loc (Names.last txt) "mutation"
            | Pexp_apply (g, (Asttypes.Nolabel, a0) :: _) -> (
              match (ident_path g, field_of a0) with
              | Some [ ":=" ], Some fld -> add e.pexp_loc fld "mutation"
              | Some ("Hashtbl" :: _), Some fld ->
                add e.pexp_loc fld "Hashtbl access"
              | _ -> ())
            | _ -> ());
            Ast_iterator.default_iterator.expr it e);
      }
    in
    List.iter (fun item -> it.Ast_iterator.structure_item it item) items;
    List.rev !acc

(* ------------------------------------------------------------------ *)
(* no-unseeded-random                                                  *)
(* ------------------------------------------------------------------ *)

let unseeded_random (f : Source.file) items =
  let acc = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_ident { txt; _ } -> (
            match Names.flatten txt with
            | "Random" :: callee :: _
              when callee <> "State" && callee <> "self_init" ->
              acc :=
                Finding.v ~rule:"no-unseeded-random" ~file:f.Source.path
                  ~line:(line_of e.pexp_loc) ~slug:callee
                  (Printf.sprintf
                     "Random.%s uses the unseeded global state; draw from a \
                      seeded Random.State (see Rng) so runs stay replayable"
                     callee)
                :: !acc
            | _ -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  List.iter (fun item -> it.Ast_iterator.structure_item it item) items;
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* hashtbl-iter-order                                                  *)
(* ------------------------------------------------------------------ *)

(* Scoped per top-level structure item: a [Hashtbl.iter]/[fold] whose
   closure argument conses a list is flagged unless the enclosing item
   mentions an identifier whose last component starts with "sort"
   ([List.sort], [sort_uniq], a local [sorted_keys] helper). Unlike
   the token rule's character windows, an identifier like [resort_x]
   does not absolve (prefix match on the component, not substring). *)

let starts_with p s =
  String.length s >= String.length p && String.sub s 0 (String.length p) = p

let subtree_has_sort item =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_ident { txt; _ } ->
            if starts_with "sort" (Names.last txt) then found := true
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.Ast_iterator.structure_item it item;
  !found

let expr_has_cons e =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_construct ({ txt; _ }, Some _) when Names.last txt = "::" ->
            found := true
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.Ast_iterator.expr it e;
  !found

let hashtbl_iter_order (f : Source.file) items =
  let acc = ref [] in
  let check_item item =
    if not (subtree_has_sort item) then begin
      let it =
        {
          Ast_iterator.default_iterator with
          expr =
            (fun it e ->
              (match e.pexp_desc with
              | Pexp_apply (g, args) -> (
                match ident_path g with
                | Some [ "Hashtbl"; ("iter" | "fold") ]
                  when List.exists (fun (_, a) -> expr_has_cons a) args ->
                  let which =
                    match ident_path g with
                    | Some p -> String.concat "." p
                    | None -> "Hashtbl.iter"
                  in
                  acc :=
                    Finding.v ~rule:"hashtbl-iter-order" ~file:f.Source.path
                      ~line:(line_of e.pexp_loc) ~slug:which
                      (Printf.sprintf
                         "%s accumulates a list in hash-bucket order with \
                          no sort in sight; sort before the result reaches \
                          a digest or caller"
                         which)
                    :: !acc
                | _ -> ())
              | _ -> ());
              Ast_iterator.default_iterator.expr it e);
        }
      in
      it.Ast_iterator.structure_item it item
    end
  in
  List.iter check_item items;
  List.rev !acc

(* ------------------------------------------------------------------ *)

let migrated_rules =
  [ "raw-shared-cell"; "no-unseeded-random"; "hashtbl-iter-order" ]

let run (files : Source.file list) =
  Finding.sort
    (List.concat_map
       (fun (f : Source.file) ->
         match f.Source.ast with
         | None -> []
         | Some items ->
           raw_shared_cell f items
           @ unseeded_random f items
           @ hashtbl_iter_order f items)
       files)
