open Parsetree
module SS = Set.Make (String)

type kind = Global | Field | Cell

type role = Data | Sync | Unknown

type access = {
  a_fn : string;
  a_file : string;
  a_line : int;
  a_write : bool;
  a_locks : string list;
}

type location = {
  l_id : string;
  l_kind : kind;
  l_role : role;
  l_cell_name : string option;
  l_file : string;
  l_line : int;
  l_roots : (string * int) list;
  l_accesses : access list;
  l_locks : string list;
}

type result = {
  findings : Finding.t list;
  locations : location list;
}

(* The simulator core IS the concurrency mechanism (its run queues
   and process tables sit beneath the model the pass checks), and the
   observability plane is digest-neutral by its own contract. *)
let exempt_file path =
  let base = Filename.basename path in
  List.mem base [ "sim.ml"; "prio_queue.ml"; "timing_wheel.ml" ]
  || List.exists (fun seg -> seg = "obs") (String.split_on_char '/' path)

let line_of = Callgraph.line_of_loc

let module_of_file file =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename file))

let rec strip e =
  match e.pexp_desc with
  | Pexp_constraint (e, _) | Pexp_open (_, e) -> strip e
  | _ -> e

let rec binding_name pat =
  match pat.ppat_desc with
  | Ppat_var { txt; _ } -> Some txt
  | Ppat_constraint (p, _) -> binding_name p
  | _ -> None

let leaf_of_path e =
  Option.map
    (fun p ->
      match List.rev (String.split_on_char '.' p) with
      | l :: _ -> l
      | [] -> p)
    (Lockpass.render_path e)

(* Tokens that survive [Lock_manager.release_all]: semaphores, ivar
   handoffs and the Cell.update RMW pseudo-token have their own
   release discipline. *)
let is_sticky tok =
  let pre p =
    String.length tok >= String.length p && String.sub tok 0 (String.length p) = p
  in
  pre "sem:" || pre "ivar:" || pre "cell:"

(* ------------------------------------------------------------------ *)
(* Inventory                                                           *)
(* ------------------------------------------------------------------ *)

type inv = {
  i_id : string;
  i_kind : kind;
  mutable i_role : role;
  mutable i_cell_name : string option;
  i_file : string;
  i_line : int;
}

let mutable_creator_paths =
  [ [ "ref" ]; [ "Hashtbl"; "create" ]; [ "Queue"; "create" ];
    [ "Buffer"; "create" ] ]

let is_mutable_creation e =
  match (strip e).pexp_desc with
  | Pexp_apply (f, _) -> (
    match (strip f).pexp_desc with
    | Pexp_ident { txt; _ } -> List.mem (Names.flatten txt) mutable_creator_paths
    | _ -> false)
  | _ -> false

(* [Sim.Cell.create ?role ?name sim v] — extract the declared role
   (default Data, the checked discipline) and the [~name] string
   literal when static (it matches the dynamic sanitizer's naming). *)
let cell_create_info env e =
  match (strip e).pexp_desc with
  | Pexp_apply (f, args) -> (
    match (strip f).pexp_desc with
    | Pexp_ident { txt; _ }
      when Names.canonical env (Names.flatten txt) = "Sim.Cell.create" ->
      let role = ref Data in
      let name = ref None in
      List.iter
        (fun (l, a) ->
          match l with
          | Asttypes.Labelled "role" -> (
            match (strip a).pexp_desc with
            | Pexp_construct ({ txt; _ }, _) when Names.last txt = "Sync" ->
              role := Sync
            | _ -> ())
          | Asttypes.Labelled "name" -> (
            match (strip a).pexp_desc with
            | Pexp_constant (Pconst_string (s, _, _)) -> name := Some s
            | _ -> ())
          | _ -> ())
        args;
      Some (!role, !name)
    | _ -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Scan output                                                         *)
(* ------------------------------------------------------------------ *)

type unit_acc = {
  ua_loc : string;
  ua_write : bool;
  ua_line : int;
  mutable ua_held : SS.t;  (* ivar fill post-pass widens this *)
  ua_released : bool;
  ua_seq : int;
}

type unit_out = {
  u_name : string;
  u_file : string;
  u_is_root : bool;
  mutable u_acc : unit_acc list;
  mutable u_calls : (string * SS.t * bool * int) list;
      (* callee, must-held at site, release_all seen before, seq *)
  mutable u_fills : (string * int) list;
  mutable u_spawn_seq : int option;
}

type root_target =
  | Rbody of string  (* scanned as its own unit under this name *)
  | Rcallee of string

type root = { r_id : string; r_mult : int; r_target : root_target }

type pending_body = {
  p_id : string;
  p_mult : int;
  p_expr : expression;
  p_env : Names.env;
  p_file : string;
  p_localmuts : (string * string) list;
}

type ctx = {
  graph : Callgraph.t;
  lock : Lockpass.result;
  inv : (string, inv) Hashtbl.t;
  wrappers : (string, bool * [ `Arg | `Fld of string ] * bool) Hashtbl.t;
      (* node -> (is_write, path spec, is_update) *)
  fdecls : (string, string list ref) Hashtbl.t;
      (* field name -> modules declaring a record field of that name *)
  parents : (string, string) Hashtbl.t;
      (* closure unit -> the unit whose scan created it *)
  callers : (string, int) Hashtbl.t;
  units : (string, unit_out) Hashtbl.t;
  mutable roots : root list;
  mutable root_seen : SS.t;
  mutable pending : pending_body list;
}

let declare_field ctx m n =
  let l =
    match Hashtbl.find_opt ctx.fdecls n with
    | Some l -> l
    | None ->
      let l = ref [] in
      Hashtbl.replace ctx.fdecls n l;
      l
  in
  if not (List.mem m !l) then l := m :: !l

(* Pick the declaring module for field [n] seen from module [m] (with
   an optional [hint] from a qualified access like [t.Explore.runs]):
   the qualifier wins, then the accessing module, then the unique
   declaring module. Ambiguous cross-module accesses resolve to
   nothing — a documented under-approximation that beats gluing
   unrelated record types into one location. *)
let field_module ctx ~m ~hint n =
  let decls =
    match Hashtbl.find_opt ctx.fdecls n with Some l -> !l | None -> []
  in
  match hint with
  | Some h when List.mem h decls -> Some h
  | _ ->
    if List.mem m decls then Some m
    else (match decls with [ m0 ] -> Some m0 | _ -> None)

let resolve_field ctx ~m ~hint n =
  match field_module ctx ~m ~hint n with
  | Some md ->
    let id = "field:" ^ md ^ "." ^ n in
    if Hashtbl.mem ctx.inv id then Some id else None
  | None -> None

let hint_of_lid (txt : Longident.t) =
  match List.rev (Names.flatten txt) with
  | _ :: m :: _ -> Some m
  | _ -> None

(* ref:<owning-unit>:<name> — the owner may itself contain colons
   (closure unit ids do), the variable name never does. *)
let ref_owner id =
  if String.length id > 4 && String.sub id 0 4 = "ref:" then
    match String.rindex_opt id ':' with
    | Some i when i > 4 -> Some (String.sub id 4 (i - 4))
    | _ -> None
  else None

let rec descends ctx u owner =
  u = owner
  || (match Hashtbl.find_opt ctx.parents u with
     | Some p -> descends ctx p owner
     | None -> false)

let register ctx id kind ~role ~cell_name ~file ~line =
  match Hashtbl.find_opt ctx.inv id with
  | Some i ->
    (* A later create site can sharpen what an access site guessed:
       Data wins over Sync wins over Unknown, first name kept. *)
    (match (i.i_role, role) with
    | Unknown, r -> i.i_role <- r
    | Sync, Data -> i.i_role <- Data
    | _ -> ());
    if i.i_cell_name = None then i.i_cell_name <- cell_name
  | None ->
    Hashtbl.replace ctx.inv id
      { i_id = id; i_kind = kind; i_role = role; i_cell_name = cell_name;
        i_file = file; i_line = line }

(* Structure walker shared by the two inventory passes. *)
let rec walk_structure on_item prefix items =
  List.iter
    (fun item ->
      on_item prefix item;
      match item.pstr_desc with
      | Pstr_module { pmb_name = { txt = Some name; _ }; pmb_expr; _ } ->
        walk_module on_item (prefix ^ "." ^ name) pmb_expr
      | Pstr_recmodule mbs ->
        List.iter
          (fun mb ->
            match mb.pmb_name.txt with
            | Some name -> walk_module on_item (prefix ^ "." ^ name) mb.pmb_expr
            | None -> ())
          mbs
      | _ -> ())
    items

and walk_module on_item prefix m =
  match m.pmod_desc with
  | Pmod_structure sub -> walk_structure on_item prefix sub
  | Pmod_constraint (m, _) -> walk_module on_item prefix m
  | _ -> ()

(* Inventory pass 1 — record types: every field declaration feeds the
   name -> declaring-modules index (for access resolution), mutable
   fields become [field:Mod.name] locations. Runs over every file
   before pass 2 so a record literal in one module can resolve a field
   declared in another. *)
let inventory_types ctx (f : Source.file) items =
  let file = f.Source.path in
  let m = module_of_file file in
  walk_structure
    (fun _prefix item ->
      match item.pstr_desc with
      | Pstr_type (_, tds) ->
        List.iter
          (fun td ->
            match td.ptype_kind with
            | Ptype_record labels ->
              List.iter
                (fun ld ->
                  declare_field ctx m ld.pld_name.txt;
                  if ld.pld_mutable = Asttypes.Mutable then
                    register ctx
                      ("field:" ^ m ^ "." ^ ld.pld_name.txt)
                      Field ~role:Unknown ~cell_name:None ~file
                      ~line:(line_of ld.pld_loc))
                labels
            | _ -> ())
          tds
      | _ -> ())
    f.Source.module_name items

(* Inventory pass 2 — values: module-level raw mutables become
   [global:] locations, record fields initialised with a raw container
   become [field:] locations, and every [Sim.Cell.create] bound to a
   let or a record field names a [cell:] location. *)
let inventory_values ctx env (f : Source.file) items =
  let file = f.Source.path in
  let m = module_of_file file in
  let reg_cell name e =
    match cell_create_info env e with
    | Some (role, cn) ->
      register ctx ("cell:" ^ name) Cell ~role ~cell_name:cn ~file
        ~line:(line_of e.pexp_loc);
      true
    | None -> false
  in
  let expr_iter =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_let (_, vbs, _) ->
            List.iter
              (fun vb ->
                match binding_name vb.pvb_pat with
                | Some n -> ignore (reg_cell n vb.pvb_expr)
                | None -> ())
              vbs
          | Pexp_record (fields, _) ->
            List.iter
              (fun (({ txt; _ } : Longident.t Asttypes.loc), fe) ->
                let n = Names.last txt in
                if not (reg_cell n fe) then
                  if is_mutable_creation fe then
                    (* a mutable container in a (possibly immutable)
                       record field is shared mutable state too *)
                    let fm =
                      match
                        field_module ctx ~m ~hint:(hint_of_lid txt) n
                      with
                      | Some fm -> fm
                      | None ->
                        declare_field ctx m n;
                        m
                    in
                    register ctx
                      ("field:" ^ fm ^ "." ^ n)
                      Field ~role:Unknown ~cell_name:None ~file
                      ~line:(line_of fe.pexp_loc))
              fields
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  walk_structure
    (fun prefix item ->
      match item.pstr_desc with
      | Pstr_value (_, vbs) ->
        List.iter
          (fun vb ->
            (match binding_name vb.pvb_pat with
            | Some n ->
              if not (reg_cell n vb.pvb_expr) then
                if is_mutable_creation vb.pvb_expr then
                  register ctx
                    ("global:" ^ prefix ^ "." ^ n)
                    Global ~role:Unknown ~cell_name:None ~file
                    ~line:(line_of vb.pvb_loc)
            | None -> ());
            expr_iter.Ast_iterator.expr expr_iter vb.pvb_expr)
          vbs
      | Pstr_eval (e, _) -> expr_iter.Ast_iterator.expr expr_iter e
      | _ -> ())
    f.Source.module_name items

(* ------------------------------------------------------------------ *)
(* Cell accessor wrappers                                              *)
(* ------------------------------------------------------------------ *)

(* lib code goes through tiny per-module wrappers ([let tbl =
   Sim.Cell.get], [let bufs t = Sim.Cell.get t.buffers], [let mut c f
   = Sim.Cell.update c ...]); recognising the three shapes keeps the
   access sites attached to the real cell. *)
let wrapper_of env body =
  let canon e =
    match (strip e).pexp_desc with
    | Pexp_ident { txt; _ } -> Some (Names.canonical env (Names.flatten txt))
    | _ -> None
  in
  let spec_of params a0 =
    match (strip a0).pexp_desc with
    | Pexp_ident { txt = Longident.Lident v; _ } when List.mem v params ->
      Some `Arg
    | Pexp_field (b, { txt; _ }) -> (
      match (strip b).pexp_desc with
      | Pexp_ident { txt = Longident.Lident v; _ } when List.mem v params ->
        Some (`Fld (Names.last txt))
      | _ -> None)
    | _ -> None
  in
  let classify op spec =
    match op with
    | "Sim.Cell.get" -> Some (false, spec, false)
    | "Sim.Cell.set" -> Some (true, spec, false)
    | "Sim.Cell.update" -> Some (true, spec, true)
    | _ -> None
  in
  match canon body with
  | Some op -> classify op `Arg (* eta alias: [let tbl = Sim.Cell.get] *)
  | None ->
    let rec peel params e =
      match (strip e).pexp_desc with
      | Pexp_fun (_, _, pat, b) when List.length params < 2 ->
        let params =
          match binding_name pat with
          | Some v -> v :: params
          | None -> params
        in
        peel params b
      | Pexp_apply (f, args) -> (
        match canon f with
        | Some op -> (
          match Lockpass.nolabel_args args with
          | a0 :: _ -> (
            match spec_of params a0 with
            | Some spec -> classify op spec
            | None -> None)
          | [] -> None)
        | None -> None)
      | _ -> None
    in
    peel [] body

(* ------------------------------------------------------------------ *)
(* Container operations on raw locations                               *)
(* ------------------------------------------------------------------ *)

let container_roots = [ "Hashtbl"; "Queue"; "Buffer"; "Stack" ]

let container_writes =
  [ "add"; "replace"; "remove"; "reset"; "clear"; "push"; "pop"; "take";
    "add_string"; "add_char"; "add_bytes"; "add_subbytes"; "add_substring";
    "transfer"; "filter_map_inplace"; "truncate" ]

let container_op n =
  match String.split_on_char '.' n with
  | [ m; op ] when List.mem m container_roots ->
    Some (List.mem op container_writes)
  | _ -> None

let lm_must_acquire = "Lock_manager.acquire"
let lm_try_acquire = "Lock_manager.try_acquire"
let cell_ops = [ "Sim.Cell.get"; "Sim.Cell.set"; "Sim.Cell.update";
                 "Sim.Cell.peek" ]
let ivar_read = "Sim.Ivar.read"
let ivar_fill = "Sim.Ivar.fill"

(* ------------------------------------------------------------------ *)
(* Per-unit scan: accesses with must-held locksets, call sites,       *)
(* spawn roots                                                         *)
(* ------------------------------------------------------------------ *)

let callers_mult ctx fn =
  match Hashtbl.find_opt ctx.callers fn with
  | Some n when n >= 2 -> 2
  | _ -> 1

let scan_unit ctx ~name ~file ~env ~is_root ~mult_hint ~localmuts body =
  let u =
    { u_name = name; u_file = file; u_is_root = is_root; u_acc = [];
      u_calls = []; u_fills = []; u_spawn_seq = None }
  in
  Hashtbl.replace ctx.units name u;
  let umod = module_of_file file in
  let localmuts = ref localmuts in
  let seq = ref 0 in
  let held = ref SS.empty in
  let released = ref false in
  let loop_depth = ref 0 in
  let hof_depth = ref 0 in
  let local_fns = ref [] in
  let use_counts = Hashtbl.create 32 in
  let count_iter =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_ident { txt = Longident.Lident n; _ } ->
            Hashtbl.replace use_counts n
              (1 + Option.value ~default:0 (Hashtbl.find_opt use_counts n))
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  count_iter.Ast_iterator.expr count_iter body;
  let uses n = Option.value ~default:0 (Hashtbl.find_opt use_counts n) in
  let defined n = Callgraph.defined ctx.graph n in
  let callee e = Callgraph.callee_of_expr env ~defined e in
  let access loc write line =
    incr seq;
    u.u_acc <-
      { ua_loc = loc; ua_write = write; ua_line = line; ua_held = !held;
        ua_released = !released; ua_seq = !seq }
      :: u.u_acc
  in
  let record_call n line =
    ignore line;
    incr seq;
    u.u_calls <- (n, !held, !released, !seq) :: u.u_calls
  in
  let loc_of_path pe =
    match (strip pe).pexp_desc with
    | Pexp_ident { txt = Longident.Lident n; _ } -> (
      match List.assoc_opt n !localmuts with
      | Some id -> Some id
      | None ->
        let gdef id = Hashtbl.mem ctx.inv ("global:" ^ id) in
        let r = Names.resolve env ~defined:gdef [ n ] in
        if gdef r then Some ("global:" ^ r) else None)
    | Pexp_ident { txt; _ } ->
      let r = Names.canonical env (Names.flatten txt) in
      if Hashtbl.mem ctx.inv ("global:" ^ r) then Some ("global:" ^ r)
      else None
    | Pexp_field (_, { txt; _ }) ->
      resolve_field ctx ~m:umod ~hint:(hint_of_lid txt) (Names.last txt)
    | _ -> None
  in
  let mark_concurrent () =
    if u.u_spawn_seq = None then u.u_spawn_seq <- Some !seq
  in
  let add_root r =
    if not (SS.mem r.r_id ctx.root_seen) then begin
      ctx.root_seen <- SS.add r.r_id ctx.root_seen;
      ctx.roots <- r :: ctx.roots
    end
  in
  let spawn_mult () =
    if
      !loop_depth > 0 || !hof_depth > 0
      || List.exists (fun fn -> uses fn >= 2) !local_fns
    then 2
    else mult_hint
  in
  let snap () = (!held, !released) in
  let restore (h, r) =
    held := h;
    released := r
  in
  let rec scan e =
    match e.pexp_desc with
    | Pexp_sequence (a, b) ->
      scan a;
      scan b
    | Pexp_ifthenelse (c, th, el) -> (
      scan c;
      match el with
      | Some el -> branch [ th; el ]
      | None ->
        (* may not execute: post = pre /\ post(then) *)
        let pre = snap () in
        scan th;
        held := SS.inter (fst pre) !held;
        released := snd pre || !released)
    | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) ->
      scan scrut;
      branch_cases cases
    | Pexp_function cases ->
      (* a closure value: runs later; nothing it acquires survives *)
      let pre = snap () in
      branch_cases cases;
      restore pre
    | Pexp_fun (_, default, _, fb) ->
      Option.iter scan default;
      let pre = snap () in
      scan fb;
      restore pre
    | Pexp_while (c, b) ->
      scan c;
      let pre = snap () in
      incr loop_depth;
      scan b;
      decr loop_depth;
      held := SS.inter (fst pre) !held;
      released := snd pre || !released
    | Pexp_for (_, a, b, _, fb) ->
      scan a;
      scan b;
      let pre = snap () in
      incr loop_depth;
      scan fb;
      decr loop_depth;
      held := SS.inter (fst pre) !held;
      released := snd pre || !released
    | Pexp_let (_, vbs, lb) ->
      List.iter
        (fun vb ->
          match (binding_name vb.pvb_pat, (strip vb.pvb_expr).pexp_desc) with
          | Some n, (Pexp_fun _ | Pexp_function _) ->
            (* local function: inline its body for accesses, but let
               no must-state leak; remember the name so a spawn
               inside it inherits the call multiplicity *)
            local_fns := n :: !local_fns;
            let pre = snap () in
            scan vb.pvb_expr;
            restore pre;
            local_fns := List.tl !local_fns
          | Some n, _ when is_mutable_creation vb.pvb_expr ->
            let id = Printf.sprintf "ref:%s:%s" name n in
            localmuts := (n, id) :: !localmuts;
            register ctx id Field ~role:Unknown ~cell_name:None ~file
              ~line:(line_of vb.pvb_loc)
          | _ -> scan vb.pvb_expr)
        vbs;
      scan lb
    | Pexp_record (fields, base) ->
      let conn_count =
        List.length
          (List.filter
             (fun (({ txt; _ } : Longident.t Asttypes.loc), _) ->
               List.mem (Names.last txt) Callgraph.conn_fields)
             fields)
      in
      if conn_count >= 5 then begin
        (* a Service_conn: each field closure is a server handler any
           number of clients can invoke concurrently *)
        mark_concurrent ();
        Option.iter scan base;
        List.iter
          (fun (({ txt; _ } : Longident.t Asttypes.loc), fe) ->
            conn_root (Names.last txt) fe)
          fields
      end
      else begin
        let pre = snap () in
        Option.iter scan base;
        List.iter
          (fun (_, fe) ->
            restore pre;
            scan fe)
          fields;
        restore pre
      end
    | Pexp_field (b, { txt; _ }) -> (
      scan b;
      match resolve_field ctx ~m:umod ~hint:(hint_of_lid txt) (Names.last txt)
      with
      | Some id -> access id false (line_of e.pexp_loc)
      | None -> ())
    | Pexp_setfield (b, { txt; _ }, v) -> (
      scan b;
      scan v;
      match resolve_field ctx ~m:umod ~hint:(hint_of_lid txt) (Names.last txt)
      with
      | Some id -> access id true (line_of e.pexp_loc)
      | None -> ())
    | Pexp_ident { txt; _ } -> (
      match loc_of_path e with
      | Some id -> access id false (line_of e.pexp_loc)
      | None ->
        let r = Names.resolve_lid env ~defined txt in
        if defined r then record_call r (line_of e.pexp_loc))
    | Pexp_apply (f, args) -> apply e f args
    | _ -> fallback e
  and fallback e =
    let it =
      { Ast_iterator.default_iterator with expr = (fun _ e' -> scan e') }
    in
    Ast_iterator.default_iterator.expr it e
  and branch exprs =
    match exprs with
    | [] -> ()
    | _ ->
      let pre = snap () in
      let posts =
        List.map
          (fun e ->
            restore pre;
            scan e;
            snap ())
          exprs
      in
      (match posts with
      | [] -> restore pre
      | (h0, r0) :: rest ->
        held := List.fold_left (fun acc (h, _) -> SS.inter acc h) h0 rest;
        released := List.fold_left (fun acc (_, r) -> acc || r) r0 rest)
  and branch_cases cases =
    branch
      (List.concat_map
         (fun c -> Option.to_list c.pc_guard @ [ c.pc_rhs ])
         cases)
  and scan_arg a =
    match (strip a).pexp_desc with
    | Pexp_fun _ | Pexp_function _ ->
      incr hof_depth;
      scan a;
      decr hof_depth
    | _ -> scan a
  and conn_root label fe =
    let line = line_of fe.pexp_loc in
    let id =
      Printf.sprintf "conn:%s:%s:%d" label (Filename.basename file) line
    in
    match (strip fe).pexp_desc with
    | Pexp_fun _ | Pexp_function _ ->
      root_of_closure id 2 fe
    | Pexp_ident _ -> (
      match callee fe with
      | Some n when defined n -> add_root { r_id = id; r_mult = 2;
                                            r_target = Rcallee n }
      | _ -> ())
    | Pexp_apply (h, hargs) -> (
      List.iter (fun (_, a) -> scan a) hargs;
      match callee h with
      | Some n when defined n -> add_root { r_id = id; r_mult = 2;
                                            r_target = Rcallee n }
      | _ -> ())
    | _ -> ()
  and root_of_closure id mult clos =
    Hashtbl.replace ctx.parents id name;
    add_root { r_id = id; r_mult = mult; r_target = Rbody id };
    ctx.pending <-
      { p_id = id; p_mult = mult; p_expr = clos; p_env = env; p_file = file;
        p_localmuts = !localmuts }
      :: ctx.pending
  and spawn_site e args =
    mark_concurrent ();
    List.iter
      (fun (l, a) -> if l <> Asttypes.Nolabel then scan a)
      args;
    match List.rev (Lockpass.nolabel_args args) with
    | clos :: before_rev -> (
      List.iter scan (List.rev before_rev);
      let line = line_of e.pexp_loc in
      let id = Printf.sprintf "spawn:%s:%d" (Filename.basename file) line in
      let mult = spawn_mult () in
      match (strip clos).pexp_desc with
      | Pexp_fun _ | Pexp_function _ -> root_of_closure id mult clos
      | Pexp_ident _ -> (
        match callee clos with
        | Some n when defined n ->
          add_root { r_id = id; r_mult = mult; r_target = Rcallee n }
        | _ -> ())
      | Pexp_apply (h, hargs) -> (
        List.iter (fun (_, a) -> scan a) hargs;
        match callee h with
        | Some n when defined n ->
          add_root { r_id = id; r_mult = mult; r_target = Rcallee n }
        | _ -> ())
      | _ -> ())
    | [] -> ()
  and cell_access ~write ~upd path_e extras line =
    match leaf_of_path path_e with
    | None -> List.iter scan extras
    | Some leaf ->
      let id = "cell:" ^ leaf in
      if not (Hashtbl.mem ctx.inv id) then
        register ctx id Cell ~role:Unknown ~cell_name:None ~file ~line;
      if upd then begin
        (* the RMW is atomic w.r.t. this cell: the access and the
           closure body hold the cell's own pseudo-token *)
        let saved = snap () in
        held := SS.add id !held;
        access id true line;
        List.iter scan extras;
        restore saved
      end
      else begin
        access id write line;
        List.iter scan extras
      end
  and apply e f args =
    let line = line_of e.pexp_loc in
    match callee f with
    | Some n when List.mem n Callgraph.spawn_like -> spawn_site e args
    | Some "Fun.protect" ->
      List.iter scan (Lockpass.nolabel_args args);
      List.iter
        (fun (l, a) ->
          match l with
          | Asttypes.Labelled "finally" | Asttypes.Optional "finally" ->
            scan a
          | _ -> ())
        args
    | Some n when List.mem n cell_ops -> (
      match Lockpass.nolabel_args args with
      | path_e :: extras ->
        if n = "Sim.Cell.peek" then List.iter scan extras
          (* unmonitored by contract: reporting/debug reads *)
        else
          cell_access ~write:(n <> "Sim.Cell.get")
            ~upd:(n = "Sim.Cell.update") path_e extras line
      | [] -> ())
    | Some n when Hashtbl.mem ctx.wrappers n -> (
      let write, spec, upd = Hashtbl.find ctx.wrappers n in
      record_call n line;
      match Lockpass.nolabel_args args with
      | a0 :: extras -> (
        match spec with
        | `Arg -> cell_access ~write ~upd a0 extras line
        | `Fld fl ->
          scan a0;
          let id = "cell:" ^ fl in
          if not (Hashtbl.mem ctx.inv id) then
            register ctx id Cell ~role:Unknown ~cell_name:None ~file ~line;
          if upd then begin
            let saved = snap () in
            held := SS.add id !held;
            access id true line;
            List.iter scan extras;
            restore saved
          end
          else begin
            access id write line;
            List.iter scan extras
          end)
      | [] -> ())
    | Some n when n = lm_must_acquire ->
      List.iter (fun (_, a) -> scan a) args;
      record_call n line;
      (match Lockpass.nolabel_args args with
      | _ :: item :: _ ->
        let tok =
          match Lockpass.render_item item with
          | Some t -> Some t
          | None ->
            Option.map (fun p -> "lm:" ^ p) (Lockpass.render_path item)
        in
        Option.iter (fun t -> held := SS.add t !held) tok
      | _ -> ())
    | Some n when n = lm_try_acquire ->
      (* may fail: contributes no must-held token *)
      List.iter (fun (_, a) -> scan a) args;
      record_call n line
    | Some n when n = Lockpass.lm_release ->
      List.iter (fun (_, a) -> scan a) args;
      record_call n line;
      held := SS.filter is_sticky !held;
      released := true
    | Some n when n = Lockpass.sem_acquire ->
      List.iter (fun (_, a) -> scan a) args;
      (match Lockpass.nolabel_args args with
      | sem :: _ ->
        Option.iter (fun t -> held := SS.add t !held)
          (Lockpass.render_sem sem)
      | [] -> ())
    | Some n when n = Lockpass.sem_with_acquire -> (
      match Lockpass.nolabel_args args with
      | sem :: rest -> (
        match Lockpass.render_sem sem with
        | Some tok ->
          held := SS.add tok !held;
          List.iter scan rest;
          held := SS.remove tok !held
        | None -> List.iter scan rest)
      | [] -> ())
    | Some n when n = Lockpass.sem_release ->
      List.iter (fun (_, a) -> scan a) args;
      (match Lockpass.nolabel_args args with
      | sem :: _ ->
        Option.iter (fun t -> held := SS.remove t !held)
          (Lockpass.render_sem sem)
      | [] -> ())
    | Some n when n = ivar_read ->
      List.iter (fun (_, a) -> scan a) args;
      (match Lockpass.nolabel_args args with
      | iv :: _ -> (
        match leaf_of_path iv with
        | Some l ->
          (* happens-after the fill, permanently from here on *)
          held := SS.add ("ivar:" ^ l) !held
        | None -> ())
      | [] -> ())
    | Some n when n = ivar_fill ->
      List.iter (fun (_, a) -> scan a) args;
      (match Lockpass.nolabel_args args with
      | iv :: _ -> (
        match leaf_of_path iv with
        | Some l -> u.u_fills <- ("ivar:" ^ l, !seq) :: u.u_fills
        | None -> ())
      | [] -> ())
    | Some "!" -> (
      match Lockpass.nolabel_args args with
      | [ r ] -> (
        match loc_of_path r with
        | Some id -> access id false line
        | None -> scan r)
      | other -> List.iter scan other)
    | Some ":=" -> (
      match Lockpass.nolabel_args args with
      | r :: rest ->
        List.iter scan rest;
        (match loc_of_path r with
        | Some id -> access id true line
        | None -> scan r)
      | [] -> ())
    | Some ("incr" | "decr") -> (
      match Lockpass.nolabel_args args with
      | [ r ] -> (
        match loc_of_path r with
        | Some id -> access id true line
        | None -> scan r)
      | other -> List.iter scan other)
    | Some n when container_op n <> None ->
      let write = match container_op n with Some w -> w | None -> false in
      let hit = ref false in
      List.iter
        (fun a ->
          match loc_of_path a with
          | Some id when not !hit ->
            hit := true;
            access id write line
          | _ -> scan_arg a)
        (Lockpass.nolabel_args args);
      List.iter
        (fun (l, a) -> if l <> Asttypes.Nolabel then scan_arg a)
        args
    | Some n ->
      List.iter (fun (_, a) -> scan_arg a) args;
      record_call n line;
      (match Hashtbl.find_opt ctx.lock.Lockpass.summaries n with
      | Some gs when Callgraph.defined ctx.graph n ->
        if gs.Lockpass.holds_on_return then
          List.iter
            (fun (v, _) -> held := SS.add v !held)
            gs.Lockpass.acquires
        else if gs.Lockpass.releases then begin
          held := SS.filter is_sticky !held;
          released := true
        end
      | _ -> ())
    | None ->
      scan f;
      List.iter (fun (_, a) -> scan_arg a) args
  in
  scan body;
  u.u_acc <- List.rev u.u_acc;
  u.u_calls <- List.rev u.u_calls;
  u

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let env_of_file ctx (f : Source.file) =
  let found = ref None in
  Hashtbl.iter
    (fun _ (n : Callgraph.node) ->
      if n.Callgraph.file = f.Source.path && !found = None then
        found := Some n.Callgraph.env)
    ctx.graph.Callgraph.nodes;
  match !found with
  | Some env -> env
  | None ->
    Names.make_env ~current_module:f.Source.module_name ~aliases:[]
      ~known_roots:
        (List.map
           (fun (g : Source.file) -> g.Source.module_name)
           ctx.graph.Callgraph.files)

let adj entry released =
  if released then SS.filter is_sticky entry else entry

let run graph mb (lock : Lockpass.result) =
  let ctx =
    { graph; lock; inv = Hashtbl.create 128; wrappers = Hashtbl.create 16;
      fdecls = Hashtbl.create 128; parents = Hashtbl.create 32;
      callers = Hashtbl.create 128; units = Hashtbl.create 256; roots = [];
      root_seen = SS.empty; pending = [] }
  in
  (* caller counts, for spawn multiplicity *)
  List.iter
    (fun (n : Callgraph.node) ->
      List.iter
        (fun (callee, _) ->
          Hashtbl.replace ctx.callers callee
            (1 + Option.value ~default:0 (Hashtbl.find_opt ctx.callers callee)))
        n.Callgraph.calls)
    (Callgraph.nodes_in_order graph);
  (* inventory (types first, across every file, so record literals in
     one module resolve fields declared in another) + wrappers *)
  List.iter
    (fun (f : Source.file) ->
      if not (exempt_file f.Source.path) then
        match f.Source.ast with
        | Some items -> inventory_types ctx f items
        | None -> ())
    graph.Callgraph.files;
  List.iter
    (fun (f : Source.file) ->
      if not (exempt_file f.Source.path) then
        match f.Source.ast with
        | Some items -> inventory_values ctx (env_of_file ctx f) f items
        | None -> ())
    graph.Callgraph.files;
  List.iter
    (fun (n : Callgraph.node) ->
      if not (exempt_file n.Callgraph.file) then
        match n.Callgraph.body with
        | Some body -> (
          match wrapper_of n.Callgraph.env body with
          | Some w -> Hashtbl.replace ctx.wrappers n.Callgraph.fn w
          | None -> ())
        | None -> ())
    (Callgraph.nodes_in_order graph);
  (* scan every node, then drain the root-closure worklist (roots can
     spawn further roots) *)
  List.iter
    (fun (n : Callgraph.node) ->
      if not (exempt_file n.Callgraph.file) then
        match n.Callgraph.body with
        | Some body ->
          ignore
            (scan_unit ctx ~name:n.Callgraph.fn ~file:n.Callgraph.file
               ~env:n.Callgraph.env ~is_root:false
               ~mult_hint:(callers_mult ctx n.Callgraph.fn) ~localmuts:[]
               body)
        | None -> ())
    (Callgraph.nodes_in_order graph);
  let guard = ref 0 in
  while ctx.pending <> [] && !guard < 1000 do
    incr guard;
    let batch = List.rev ctx.pending in
    ctx.pending <- [];
    List.iter
      (fun p ->
        ignore
          (scan_unit ctx ~name:p.p_id ~file:p.p_file ~env:p.p_env
             ~is_root:true ~mult_hint:p.p_mult ~localmuts:p.p_localmuts
             p.p_expr))
      batch
  done;
  (* The yield gate: under the cooperative scheduler execution is
     atomic between blocking points, so a race needs a {e torn
     window} — one activation touching the location both before and
     after a call that may suspend (read / yield / write is the
     canonical lost update). A lone atomic access, however many tasks
     make it, cannot interleave mid-invariant. *)
  let exposed_locs =
    let s = ref SS.empty in
    Hashtbl.iter
      (fun _ u ->
        let blocks =
          List.filter_map
            (fun (c, _, _, cseq) ->
              if Mayblock.reasons mb c <> [] then Some cseq else None)
            u.u_calls
        in
        if blocks <> [] then begin
          let spans = Hashtbl.create 8 in
          List.iter
            (fun a ->
              let lo, hi =
                match Hashtbl.find_opt spans a.ua_loc with
                | Some (lo, hi) -> (min lo a.ua_seq, max hi a.ua_seq)
                | None -> (a.ua_seq, a.ua_seq)
              in
              Hashtbl.replace spans a.ua_loc (lo, hi))
            u.u_acc;
          Hashtbl.iter
            (fun loc (lo, hi) ->
              if List.exists (fun b -> lo < b && b < hi) blocks then
                s := SS.add loc !s)
            spans
        end)
      ctx.units;
    !s
  in
  (* ivar fill handoff: accesses made before the fill happen-before
     every read-side access *)
  Hashtbl.iter
    (fun _ u ->
      List.iter
        (fun (tok, fseq) ->
          List.iter
            (* [<=]: the fill records the current seq without bumping
               it, so an access in the same atomic window as the fill
               (scanned before it, program order) shares its seq *)
            (fun a -> if a.ua_seq <= fseq then a.ua_held <- SS.add tok a.ua_held)
            u.u_acc)
        u.u_fills)
    ctx.units;
  (* spawner continuations: only work after the first spawn (or conn
     publication) runs concurrently with anything *)
  let after_roots =
    List.sort compare
      (Hashtbl.fold
         (fun _ u acc ->
           match u.u_spawn_seq with
           | Some s when not u.u_is_root ->
             (u.u_name, s, callers_mult ctx u.u_name) :: acc
           | _ -> acc)
         ctx.units [])
  in
  (* entry locksets: meet over call sites, roots start empty *)
  let entries : (string, SS.t) Hashtbl.t = Hashtbl.create 128 in
  let meet callee abs changed =
    if Hashtbl.mem ctx.units callee then
      match Hashtbl.find_opt entries callee with
      | None ->
        Hashtbl.replace entries callee abs;
        changed := true
      | Some cur ->
        let m = SS.inter cur abs in
        if not (SS.equal m cur) then begin
          Hashtbl.replace entries callee m;
          changed := true
        end
  in
  List.iter
    (fun r ->
      match r.r_target with
      | Rcallee c -> ignore (meet c SS.empty (ref false))
      | Rbody _ -> ())
    ctx.roots;
  let unit_names = List.sort compare (Hashtbl.fold (fun k _ a -> k :: a) ctx.units []) in
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds < 64 do
    changed := false;
    incr rounds;
    List.iter
      (fun uname ->
        let u = Hashtbl.find ctx.units uname in
        let base =
          if u.u_is_root then Some SS.empty
          else Hashtbl.find_opt entries uname
        in
        (match base with
        | Some base ->
          List.iter
            (fun (callee, h, rel, _) ->
              meet callee (SS.union h (adj base rel)) changed)
            u.u_calls
        | None -> ());
        (* the spawner's continuation enters with nothing held *)
        match u.u_spawn_seq with
        | Some s when not u.u_is_root ->
          List.iter
            (fun (callee, h, _, cseq) ->
              if cseq >= s then meet callee h changed)
            u.u_calls
        | _ -> ())
      unit_names
  done;
  let entry_of uname =
    match Hashtbl.find_opt entries uname with
    | Some s -> s
    | None -> SS.empty
  in
  (* reachability per root *)
  let bfs starts =
    let seen = ref SS.empty in
    let q = Queue.create () in
    List.iter
      (fun s ->
        if Hashtbl.mem ctx.units s && not (SS.mem s !seen) then begin
          seen := SS.add s !seen;
          Queue.add s q
        end)
      starts;
    while not (Queue.is_empty q) do
      let uname = Queue.pop q in
      let u = Hashtbl.find ctx.units uname in
      List.iter
        (fun (callee, _, _, _) ->
          if Hashtbl.mem ctx.units callee && not (SS.mem callee !seen) then begin
            seen := SS.add callee !seen;
            Queue.add callee q
          end)
        u.u_calls
    done;
    !seen
  in
  (* attribution *)
  let aggs :
      (string, (string * int) list ref * (string * string) list ref)
      Hashtbl.t =
    Hashtbl.create 64
  in
  let note_access root mult uname a locks =
    let roots, reps =
      match Hashtbl.find_opt aggs a.ua_loc with
      | Some x -> x
      | None ->
        let x = (ref [], ref []) in
        Hashtbl.replace aggs a.ua_loc x;
        x
    in
    if not (List.mem_assoc root !roots) then roots := (root, mult) :: !roots;
    let file = (Hashtbl.find ctx.units uname).u_file in
    let acc =
      { a_fn = uname; a_file = file; a_line = a.ua_line; a_write = a.ua_write;
        a_locks = SS.elements locks }
    in
    (* keep one representative access per root, writes preferred *)
    (match List.assoc_opt root !reps with
    | None ->
      reps :=
        (root,
         Printf.sprintf "%s at %s:%d %s [%s]" acc.a_fn acc.a_file acc.a_line
           (if acc.a_write then "writes" else "reads")
           (if acc.a_locks = [] then "no locks"
            else String.concat "," acc.a_locks))
        :: !reps
    | Some _ when a.ua_write ->
      reps :=
        (root,
         Printf.sprintf "%s at %s:%d writes [%s]" acc.a_fn acc.a_file
           acc.a_line
           (if acc.a_locks = [] then "no locks"
            else String.concat "," acc.a_locks))
        :: List.remove_assoc root !reps
    | Some _ -> ());
    acc
  in
  let final_accs : (string, access list ref) Hashtbl.t = Hashtbl.create 64 in
  let count_unit root mult ~rt uname ~filter =
    match Hashtbl.find_opt ctx.units uname with
    | None -> ()
    | Some u ->
      let entry = if u.u_is_root then SS.empty else entry_of uname in
      (* A [ref:] location is one instance per activation of its
         owning function: only closures spawned inside that activation
         and the activation's own continuation share it. A root that
         merely CALLS the owner gets a fresh instance — not shared. *)
      let ref_mult loc =
        match ref_owner loc with
        | None -> Some mult
        | Some owner -> (
          match rt with
          | `After u -> if u = owner then Some 1 else None
          | `Body id -> if descends ctx id owner then Some mult else None
          | `Callee -> None)
      in
      List.iter
        (fun a ->
          match if filter a then ref_mult a.ua_loc else None with
          | None -> ()
          | Some mult ->
            let locks = SS.union a.ua_held (adj entry a.ua_released) in
            let acc = note_access root mult uname a locks in
            let l =
              match Hashtbl.find_opt final_accs a.ua_loc with
              | Some l -> l
              | None ->
                let l = ref [] in
                Hashtbl.replace final_accs a.ua_loc l;
                l
            in
            if
              not
                (List.exists
                   (fun x ->
                     x.a_fn = acc.a_fn && x.a_line = acc.a_line
                     && x.a_write = acc.a_write)
                   !l)
            then l := acc :: !l)
        u.u_acc
  in
  let all = fun _ -> true in
  List.iter
    (fun r ->
      let starts, own, rt =
        match r.r_target with
        | Rbody id ->
          let direct =
            match Hashtbl.find_opt ctx.units id with
            | Some u -> List.map (fun (c, _, _, _) -> c) u.u_calls
            | None -> []
          in
          (direct, Some id, `Body id)
        | Rcallee c -> ([ c ], None, `Callee)
      in
      let reached = bfs starts in
      Option.iter (fun id -> count_unit r.r_id r.r_mult ~rt id ~filter:all) own;
      SS.iter
        (fun uname -> count_unit r.r_id r.r_mult ~rt uname ~filter:all)
        reached)
    (List.sort compare ctx.roots);
  List.iter
    (fun (fn, s, mult) ->
      let u = Hashtbl.find ctx.units fn in
      let post = List.filter_map
          (fun (c, _, _, cseq) -> if cseq >= s then Some c else None)
          u.u_calls
      in
      let rid = "after:" ^ fn in
      let rt = `After fn in
      count_unit rid mult ~rt fn ~filter:(fun a -> a.ua_seq >= s);
      SS.iter
        (fun uname -> count_unit rid mult ~rt uname ~filter:all)
        (bfs post))
    after_roots;
  (* assemble locations + findings *)
  let loc_ids = List.sort compare (Hashtbl.fold (fun k _ a -> k :: a) aggs []) in
  let findings = ref [] in
  let locations = ref [] in
  List.iter
    (fun id ->
      let roots, reps = Hashtbl.find aggs id in
      let roots = List.sort compare !roots in
      let degree = List.fold_left (fun n (_, m) -> n + m) 0 roots in
      if degree >= 2 then begin
        let accesses =
          List.sort
            (fun a b ->
              compare (a.a_file, a.a_line, a.a_fn) (b.a_file, b.a_line, b.a_fn))
            (match Hashtbl.find_opt final_accs id with
            | Some l -> !l
            | None -> [])
        in
        let inter =
          match accesses with
          | [] -> SS.empty
          | a0 :: rest ->
            List.fold_left
              (fun acc a -> SS.inter acc (SS.of_list a.a_locks))
              (SS.of_list a0.a_locks) rest
        in
        let has_write = List.exists (fun a -> a.a_write) accesses in
        let exposed = SS.mem id exposed_locs in
        let inv =
          match Hashtbl.find_opt ctx.inv id with
          | Some i -> i
          | None ->
            { i_id = id; i_kind = Cell; i_role = Unknown; i_cell_name = None;
              i_file = (match accesses with a :: _ -> a.a_file | [] -> "");
              i_line = (match accesses with a :: _ -> a.a_line | [] -> 0) }
        in
        let loc =
          { l_id = id; l_kind = inv.i_kind; l_role = inv.i_role;
            l_cell_name = inv.i_cell_name; l_file = inv.i_file;
            l_line = inv.i_line; l_roots = roots; l_accesses = accesses;
            l_locks = SS.elements inter }
        in
        locations := loc :: !locations;
        let witness =
          List.filteri
            (fun i _ -> i < 3)
            (List.map
               (fun (root, rep) ->
                 let m = Option.value ~default:1 (List.assoc_opt root roots) in
                 Printf.sprintf "root %s (x%d): %s" root m rep)
               (List.sort compare !reps))
        in
        let emit rule msg =
          findings :=
            Finding.v ~witness ~rule ~file:inv.i_file ~line:inv.i_line
              ~slug:id msg
            :: !findings
        in
        let nroots = List.length roots in
        (match inv.i_kind with
        | Cell ->
          if inv.i_role = Data && has_write && SS.is_empty inter && exposed
          then
            emit "unsynchronized-cell-write"
              (Printf.sprintf
                 "Data-role cell %s%s is written from %d concurrent roots \
                  with no common lock; make the read-modify-write atomic \
                  with Sim.Cell.update, guard the accesses, or declare the \
                  cell ~role:Sync with a protocol argument"
                 id
                 (match inv.i_cell_name with
                 | Some n -> Printf.sprintf " (%S)" n
                 | None -> "")
                 nroots)
        | Global ->
          if has_write then begin
            emit "unmonitored-shared-state"
              (Printf.sprintf
                 "module-level mutable %s is written by concurrent roots but \
                  is invisible to the sanitizer; move it into a per-world \
                  Sim.Cell so every access is monitored"
                 id);
            if SS.is_empty inter && exposed then
              emit "static-race"
                (Printf.sprintf
                   "shared location %s is reachable from %d concurrent roots \
                    (weight %d) with no common lock across its %d access \
                    sites; guard it or hand it off via an ivar"
                   id nroots degree (List.length accesses))
          end
        | Field ->
          if has_write && SS.is_empty inter && exposed then
            emit "static-race"
              (Printf.sprintf
                 "shared location %s is reachable from %d concurrent roots \
                  (weight %d) with no common lock across its %d access \
                  sites; guard it or hand it off via an ivar"
                 id nroots degree (List.length accesses)))
      end)
    loc_ids;
  { findings = Finding.sort !findings; locations = List.rev !locations }

(* ------------------------------------------------------------------ *)
(* Protection map JSON                                                 *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let kind_str = function
  | Global -> "global"
  | Field -> "field"
  | Cell -> "cell"

let role_str = function Data -> "data" | Sync -> "sync" | Unknown -> "unknown"

let locations_to_json locs =
  let q s = "\"" ^ json_escape s ^ "\"" in
  "["
  ^ String.concat ","
      (List.map
         (fun l ->
           Printf.sprintf
             "{\"location\":%s,\"kind\":%s,\"role\":%s,%s\"decl\":%s,\
              \"roots\":[%s],\"locks\":[%s],\"sites\":[%s]}"
             (q l.l_id)
             (q (kind_str l.l_kind))
             (q (role_str l.l_role))
             (match l.l_cell_name with
             | Some n -> Printf.sprintf "\"cell_name\":%s," (q n)
             | None -> "")
             (q (Printf.sprintf "%s:%d" l.l_file l.l_line))
             (String.concat ","
                (List.map
                   (fun (r, m) ->
                     Printf.sprintf "{\"root\":%s,\"mult\":%d}" (q r) m)
                   l.l_roots))
             (String.concat "," (List.map q l.l_locks))
             (String.concat ","
                (List.map
                   (fun a ->
                     Printf.sprintf
                       "{\"fn\":%s,\"file\":%s,\"line\":%d,\"write\":%b,\
                        \"locks\":[%s]}"
                       (q a.a_fn) (q a.a_file) a.a_line a.a_write
                       (String.concat "," (List.map q a.a_locks)))
                   l.l_accesses)))
         locs)
  ^ "]"
