(** Findings reported by the static passes, with a line-stable
    identity for the committed baseline and a JSON rendering for
    [rhodos_lint static --json]. *)

type t = {
  rule : string;  (** e.g. ["may-block-under-lock"] *)
  file : string;  (** path as scanned *)
  line : int;
  symbol : string;  (** enclosing function / type, [""] if none *)
  slug : string;
      (** pass-chosen stable discriminator (callee, cycle, constructor
          name); part of {!key} so edits elsewhere in the file do not
          invalidate a baseline entry *)
  message : string;
  witness : string list;
      (** human-readable evidence: the call chain to the blocking
          primitive, the cycle's edges, ... *)
}

val v :
  ?symbol:string ->
  ?witness:string list ->
  rule:string ->
  file:string ->
  line:int ->
  slug:string ->
  string ->
  t

val key : t -> string
(** [rule|basename|symbol|slug] — line-number independent. *)

val sort : t list -> t list
(** Deterministic order (file, line, rule, slug), duplicates dropped. *)

val pp : Format.formatter -> t -> unit
(** Compiler-style [file:line: [rule] message], witness lines
    indented below. *)

val to_json : t -> string

val list_to_json :
  ?suppressed:int ->
  ?parse_failures:string list ->
  ?timings:(string * float) list ->
  ?extras:(string * string) list ->
  t list ->
  string
(** [{"findings":[...],"suppressed":n,"parse_failures":[...],
    "timings":[{"pass":...,"ms":...},...]}] — [timings] are
    (pass, seconds) pairs, rendered in milliseconds. Each [extras]
    pair becomes one extra top-level member; the value must already
    be rendered JSON (the race pass's protection map rides here). *)

val baseline_of_string : string -> string list
(** Parse a baseline file's accepted {!key} list. *)

val baseline_to_string : string list -> string
(** Render keys as a committed baseline (sorted, deduped). *)
