open Parsetree

(* A lock token names one statically identifiable lock: a
   [Lock_manager] item rendered from its constructor and arguments
   ("File_item 1", "Page_item(fid,i)"), or a semaphore identified by
   the path expression it is acquired through ("sem:t.fetch_slots").
   Items whose arguments cannot be rendered are dynamic: they still
   set the held flag for the may-block pass but take no part in the
   order graph (a dynamic item unifies with nothing). *)
type token = string

type summary = {
  mutable acquires : (token * string list) list;
      (** tokens this function may acquire, directly or transitively;
          the chain starts at this function and ends at the acquiring
          function *)
  mutable holds_on_return : bool;  (** may return with a grant held *)
  mutable releases : bool;  (** may call [release_all] *)
}

type edge = {
  e_from : token;
  e_to : token;
  e_file : string;
  e_line : int;
  e_witness : string;
}

type result = {
  findings : Finding.t list;
  edges : edge list;
  summaries : (string, summary) Hashtbl.t;
}

(* ------------------------------------------------------------------ *)
(* Token rendering                                                     *)
(* ------------------------------------------------------------------ *)

let item_ctors = [ "File_item"; "Page_item"; "Record_item" ]

let rec strip e =
  match e.pexp_desc with
  | Pexp_constraint (e, _) | Pexp_open (_, e) -> strip e
  | _ -> e

let rec render_path e =
  match (strip e).pexp_desc with
  | Pexp_ident { txt; _ } -> Some (String.concat "." (Names.flatten txt))
  | Pexp_field (b, { txt; _ }) ->
    Option.map (fun p -> p ^ "." ^ Names.last txt) (render_path b)
  | _ -> None

let render_scalar e =
  match (strip e).pexp_desc with
  | Pexp_constant (Pconst_integer (s, _)) -> Some s
  | _ -> render_path e

let render_item e =
  match (strip e).pexp_desc with
  | Pexp_construct ({ txt; _ }, arg) when List.mem (Names.last txt) item_ctors
    -> (
    let c = Names.last txt in
    match arg with
    | None -> Some c
    | Some a -> (
      match (strip a).pexp_desc with
      | Pexp_tuple parts ->
        let rs = List.map render_scalar parts in
        if List.for_all Option.is_some rs then
          Some
            (c ^ "("
            ^ String.concat "," (List.map (Option.value ~default:"?") rs)
            ^ ")")
        else None
      | _ -> Option.map (fun s -> c ^ " " ^ s) (render_scalar a)))
  | _ -> None

let render_sem e = Option.map (fun p -> "sem:" ^ p) (render_path e)

let is_sem_token tok =
  String.length tok >= 4 && String.sub tok 0 4 = "sem:"

(* ------------------------------------------------------------------ *)
(* Canonical callee groups                                             *)
(* ------------------------------------------------------------------ *)

let lm_acquires = [ "Lock_manager.acquire"; "Lock_manager.try_acquire" ]
let lm_release = "Lock_manager.release_all"
let sem_acquire = "Sim.Semaphore.acquire"
let sem_release = "Sim.Semaphore.release"
let sem_with_acquire = "Sim.Semaphore.with_acquire"
let cell_update = "Sim.Cell.update"

let nolabel_args args =
  List.filter_map
    (fun (l, e) -> match l with Asttypes.Nolabel -> Some e | _ -> None)
    args

(* ------------------------------------------------------------------ *)
(* Per-function scan                                                   *)
(* ------------------------------------------------------------------ *)

type state = { mutable lm_held : bool; mutable toks : token list }

type ctx = {
  graph : Callgraph.t;
  mb : Mayblock.t;
  summaries : (string, summary) Hashtbl.t;
  emit : bool;
  mutable findings : Finding.t list;
  mutable edges : edge list;
  mutable changed : bool;
}

let summary_of ctx fn =
  match Hashtbl.find_opt ctx.summaries fn with
  | Some s -> s
  | None ->
    let s = { acquires = []; holds_on_return = false; releases = false } in
    Hashtbl.replace ctx.summaries fn s;
    s

let scan_node ctx (node : Callgraph.node) =
  let fn = node.fn in
  let s = summary_of ctx fn in
  let st = { lm_held = false; toks = [] } in
  let cell_depth = ref 0 in
  let add_acquire tok chain =
    if not (List.mem_assoc tok s.acquires) then begin
      s.acquires <- (tok, chain) :: s.acquires;
      ctx.changed <- true
    end
  in
  let add_edge u v line chain =
    if u <> v && ctx.emit then
      ctx.edges <-
        {
          e_from = u;
          e_to = v;
          e_file = node.file;
          e_line = line;
          e_witness =
            Printf.sprintf "%s -> %s via %s (%s:%d)" u v
              (String.concat " -> " chain)
              node.file line;
        }
        :: ctx.edges
  in
  let finding f = if ctx.emit then ctx.findings <- f :: ctx.findings in
  let on_new_token tok line chain =
    List.iter (fun u -> add_edge u tok line chain) st.toks;
    if not (List.mem tok st.toks) then st.toks <- st.toks @ [ tok ]
  in
  let check_blocking callee line =
    let all = Mayblock.reasons ctx.mb callee in
    if !cell_depth > 0 && all <> [] then
      finding
        (Finding.v ~symbol:fn
           ~witness:
             (List.filteri
                (fun i _ -> i < 2)
                (List.map
                   (fun (seed, cls) ->
                     Printf.sprintf "blocking path (%s): %s"
                       (Mayblock.cls_to_string cls)
                       (String.concat " -> "
                          (fn :: Mayblock.chain ctx.mb callee seed)))
                   all))
           ~rule:"may-block-in-cell-update" ~file:node.file ~line ~slug:callee
           (Printf.sprintf
              "call to %s may block inside a Sim.Cell.update critical \
               section; the read-modify-write must stay atomic"
              callee));
    if st.lm_held && not (List.mem callee Mayblock.acquire_specials) then begin
      let hazardous =
        Mayblock.may_block ctx.mb callee
          ~classes:[ Mayblock.Time; Mayblock.Remote ]
      in
      if hazardous <> [] then
        finding
          (Finding.v ~symbol:fn
             ~witness:
               (List.filteri
                  (fun i _ -> i < 2)
                  (List.map
                     (fun (seed, cls) ->
                       Printf.sprintf "blocking path (%s): %s"
                         (Mayblock.cls_to_string cls)
                         (String.concat " -> "
                            (fn :: Mayblock.chain ctx.mb callee seed)))
                     hazardous))
             ~rule:"may-block-under-lock" ~file:node.file ~line ~slug:callee
             (Printf.sprintf
                "call to %s may block while a Lock_manager grant is held \
                 (lock-held-across-%s); release first, or suppress with a \
                 static-ok justification"
                callee
                (if
                   List.exists (fun (_, c) -> c = Mayblock.Remote) hazardous
                 then "RPC"
                 else "wait")))
    end
  in
  let snap () = (st.lm_held, st.toks) in
  let restore (h, t) =
    st.lm_held <- h;
    st.toks <- t
  in
  let rec scan e =
    match e.pexp_desc with
    | Pexp_sequence (a, b) ->
      scan a;
      scan b
    | Pexp_ifthenelse (c, th, el) ->
      scan c;
      branch (th :: Option.to_list el)
    | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) ->
      scan scrut;
      branch_cases cases
    | Pexp_function cases -> branch_cases cases
    | Pexp_while (c, b) ->
      scan c;
      scan b
    | Pexp_record (fields, base) ->
      (* Record fields do not execute at construction time — the
         typical case is a record of RPC stub closures
         ([Service_conn]) which run much later on someone else's
         path (and are modelled there via the conn-field
         pseudo-callees). Scan each field for hazards under the
         construction-time state, but let no state leak between
         fields or out of the record. *)
      let pre = snap () in
      Option.iter scan base;
      List.iter
        (fun (_, fe) ->
          restore pre;
          scan fe)
        fields;
      restore pre
    | Pexp_apply (f, args) -> apply e f args
    | _ -> fallback e
  and fallback e =
    let it =
      { Ast_iterator.default_iterator with expr = (fun _ e' -> scan e') }
    in
    Ast_iterator.default_iterator.expr it e
  and branch exprs =
    match exprs with
    | [] -> ()
    | _ ->
      let pre = snap () in
      let posts =
        List.map
          (fun e ->
            restore pre;
            scan e;
            snap ())
          exprs
      in
      st.lm_held <- List.exists (fun (h, _) -> h) posts;
      st.toks <-
        List.fold_left
          (fun acc (_, ts) ->
            List.fold_left
              (fun acc t -> if List.mem t acc then acc else acc @ [ t ])
              acc ts)
          [] posts
  and branch_cases cases =
    branch
      (List.concat_map
         (fun c -> Option.to_list c.pc_guard @ [ c.pc_rhs ])
         cases)
  and apply e f args =
    let line = Callgraph.line_of_loc e.pexp_loc in
    let callee = Callgraph.callee_name ctx.graph node.env f in
    match callee with
    | Some n when List.mem n Callgraph.spawn_like -> ()
    | Some "Fun.protect" ->
      (* The body runs first, the finally closure last — scan in
         execution order, not argument order. *)
      List.iter scan (nolabel_args args);
      List.iter
        (fun (l, a) ->
          match l with
          | Asttypes.Labelled "finally" | Asttypes.Optional "finally" ->
            scan a
          | _ -> ())
        args
    | Some n when n = cell_update ->
      incr cell_depth;
      List.iter (fun (_, a) -> scan a) args;
      decr cell_depth
    | Some n when List.mem n lm_acquires ->
      List.iter (fun (_, a) -> scan a) args;
      st.lm_held <- true;
      (match nolabel_args args with
      | _ :: item :: _ -> (
        match render_item item with
        | Some tok ->
          add_acquire tok [ fn ];
          on_new_token tok line [ fn ]
        | None -> ())
      | _ -> ())
    | Some n when n = lm_release ->
      List.iter (fun (_, a) -> scan a) args;
      st.lm_held <- false;
      st.toks <- List.filter is_sem_token st.toks;
      if not s.releases then begin
        s.releases <- true;
        ctx.changed <- true
      end
    | Some n when n = sem_acquire ->
      List.iter (fun (_, a) -> scan a) args;
      (match nolabel_args args with
      | sem :: _ -> (
        match render_sem sem with
        | Some tok ->
          add_acquire tok [ fn ];
          on_new_token tok line [ fn ]
        | None -> ())
      | _ -> ())
    | Some n when n = sem_with_acquire ->
      (* Scoped acquisition: the closure runs with the token held and
         the release is structural, so the token cannot escape the
         call. *)
      (match nolabel_args args with
      | sem :: rest ->
        (match render_sem sem with
        | Some tok ->
          add_acquire tok [ fn ];
          on_new_token tok line [ fn ];
          List.iter scan rest;
          st.toks <- List.filter (fun t -> t <> tok) st.toks
        | None -> List.iter scan rest)
      | [] -> ())
    | Some n when n = sem_release ->
      List.iter (fun (_, a) -> scan a) args;
      (match nolabel_args args with
      | sem :: _ -> (
        match render_sem sem with
        | Some tok -> st.toks <- List.filter (fun t -> t <> tok) st.toks
        | None -> ())
      | _ -> ())
    | Some n ->
      List.iter (fun (_, a) -> scan a) args;
      check_blocking n line;
      (match Hashtbl.find_opt ctx.summaries n with
      | Some gs when Callgraph.defined ctx.graph n ->
        List.iter
          (fun u ->
            List.iter
              (fun (v, chain) -> add_edge u v line (fn :: chain))
              gs.acquires)
          st.toks;
        List.iter (fun (v, chain) -> add_acquire v (fn :: chain)) gs.acquires;
        if gs.holds_on_return then begin
          st.lm_held <- true;
          List.iter
            (fun (v, _) ->
              if not (List.mem v st.toks) then st.toks <- st.toks @ [ v ])
            gs.acquires
        end
        else if gs.releases then begin
          st.lm_held <- false;
          st.toks <- List.filter is_sem_token st.toks
        end
      | _ -> ())
    | None ->
      scan f;
      List.iter (fun (_, a) -> scan a) args
  in
  (match node.body with Some b -> scan b | None -> ());
  let holds = st.lm_held || List.exists is_sem_token st.toks in
  if holds && not s.holds_on_return then begin
    s.holds_on_return <- true;
    ctx.changed <- true
  end

(* ------------------------------------------------------------------ *)
(* Cycle detection over the order graph                                *)
(* ------------------------------------------------------------------ *)

let cycle_findings edges =
  let adj = Hashtbl.create 32 in
  let nodes = ref [] in
  let add_node n = if not (List.mem n !nodes) then nodes := n :: !nodes in
  List.iter
    (fun e ->
      add_node e.e_from;
      add_node e.e_to;
      let cur = try Hashtbl.find adj e.e_from with Not_found -> [] in
      if not (List.exists (fun (v, _) -> v = e.e_to) cur) then
        Hashtbl.replace adj e.e_from ((e.e_to, e) :: cur))
    edges;
  let nodes = List.sort compare !nodes in
  let succs u = try Hashtbl.find adj u with Not_found -> [] in
  (* Tarjan's SCC. *)
  let index = Hashtbl.create 32 in
  let lowlink = Hashtbl.create 32 in
  let on_stack = Hashtbl.create 32 in
  let stack = ref [] in
  let counter = ref 0 in
  let sccs = ref [] in
  let rec strongconnect v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace lowlink v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v true;
    List.iter
      (fun (w, _) ->
        if not (Hashtbl.mem index w) then begin
          strongconnect w;
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
        end
        else if Hashtbl.find_opt on_stack w = Some true then
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      (succs v);
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      let scc = ref [] in
      let continue = ref true in
      while !continue do
        match !stack with
        | w :: rest ->
          stack := rest;
          Hashtbl.replace on_stack w false;
          scc := w :: !scc;
          if w = v then continue := false
        | [] -> continue := false
      done;
      if List.length !scc >= 2 then sccs := List.sort compare !scc :: !sccs
    end
  in
  List.iter (fun v -> if not (Hashtbl.mem index v) then strongconnect v) nodes;
  (* For each SCC, extract one witnessing simple cycle by DFS from its
     smallest node back to itself, restricted to SCC members. *)
  let find_cycle scc =
    let start = List.hd scc in
    let rec dfs path visited u =
      List.fold_left
        (fun found (v, e) ->
          match found with
          | Some _ -> found
          | None ->
            if not (List.mem v scc) then None
            else if v = start then Some (List.rev (e :: path))
            else if List.mem v visited then None
            else dfs (e :: path) (v :: visited) v)
        None (succs u)
    in
    dfs [] [ start ] start
  in
  List.filter_map
    (fun scc ->
      match find_cycle scc with
      | None -> None
      | Some cycle_edges ->
        let first = List.hd cycle_edges in
        let ring =
          String.concat " -> "
            (List.map (fun e -> e.e_from) cycle_edges @ [ first.e_from ])
        in
        Some
          (Finding.v
             ~witness:(List.map (fun e -> e.e_witness) cycle_edges)
             ~rule:"lock-order-cycle" ~file:first.e_file ~line:first.e_line
             ~slug:(String.concat "|" scc)
             (Printf.sprintf
                "potential ABBA deadlock: locks are acquired in a cycle %s"
                ring)))
    (List.sort compare !sccs)

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let run graph mb =
  let ctx =
    {
      graph;
      mb;
      summaries = Hashtbl.create 256;
      emit = false;
      findings = [];
      edges = [];
      changed = true;
    }
  in
  let rounds = ref 0 in
  while ctx.changed && !rounds < 16 do
    ctx.changed <- false;
    incr rounds;
    List.iter (scan_node ctx) (Callgraph.nodes_in_order graph)
  done;
  let ctx = { ctx with emit = true; changed = false } in
  List.iter (scan_node ctx) (Callgraph.nodes_in_order graph);
  let edges = List.rev ctx.edges in
  {
    findings = Finding.sort (ctx.findings @ cycle_findings edges);
    edges;
    summaries = ctx.summaries;
  }
