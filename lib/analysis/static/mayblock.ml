type cls = Lock | Time | Remote

let cls_to_string = function
  | Lock -> "lock"
  | Time -> "time"
  | Remote -> "remote"

(* Blocking primitives of the simulator and the RPC layer. Everything
   else that blocks does so by calling one of these, which the
   fixpoint discovers by propagation — the disk's [Sim.sleep], the
   RPC stub's [Net.Rpc.call], and so on. *)
let seeds =
  [
    ("Sim.sleep", Time);
    ("Sim.suspend", Time);
    ("Sim.suspend_full", Time);
    ("Sim.Mailbox.recv", Time);
    ("Sim.Mailbox.recv_timeout", Time);
    ("Sim.Condition.wait", Time);
    ("Sim.Condition.wait_timeout", Time);
    ("Sim.Ivar.read", Time);
    ("Sim.Semaphore.acquire", Lock);
    ("Sim.Semaphore.with_acquire", Lock);
    ("Lock_manager.acquire", Lock);
    ("Lock_manager.try_acquire", Lock);
    ("Net.recv", Remote);
    ("Net.recv_timeout", Remote);
    ("Net.Rpc.call", Remote);
  ]

(* Taking another lock while holding one is ordinary 2PL, judged by
   the lock-order pass, not the may-block pass. These are therefore
   opaque in the fixpoint: a caller inherits only their [Lock] class,
   never the [Time] reasons of their implementations (the lock
   manager's simulated search cost would otherwise paint every
   multi-lock transaction as time-blocking). *)
let acquire_specials =
  [ "Lock_manager.acquire"; "Lock_manager.try_acquire";
    "Sim.Semaphore.acquire"; "Sim.Semaphore.with_acquire" ]

let seed_class name =
  if List.exists (fun f -> name = "Service_conn." ^ f) Callgraph.conn_fields
  then Some Remote
  else List.assoc_opt name seeds

type info = {
  (* seed -> (class, next hop on a witness path: None = called
     directly by this function) *)
  mutable reasons : (string * (cls * string option)) list;
}

type t = {
  graph : Callgraph.t;
  infos : (string, info) Hashtbl.t;
}

let info t fn =
  match Hashtbl.find_opt t.infos fn with
  | Some i -> i
  | None ->
    let i = { reasons = [] } in
    Hashtbl.replace t.infos fn i;
    i

let add_reason i seed cls via =
  if not (List.mem_assoc seed i.reasons) then begin
    i.reasons <- (seed, (cls, via)) :: i.reasons;
    true
  end
  else false

let compute graph =
  let t = { graph; infos = Hashtbl.create 256 } in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (n : Callgraph.node) ->
        let i = info t n.fn in
        List.iter
          (fun (callee, _) ->
            if List.mem callee acquire_specials then begin
              if add_reason i callee Lock None then changed := true
            end
            else
              match seed_class callee with
              | Some cls ->
                if add_reason i callee cls None then changed := true
              | None -> (
                match Hashtbl.find_opt t.infos callee with
                | None -> ()
                | Some ci ->
                  List.iter
                    (fun (seed, (cls, _)) ->
                      if add_reason i seed cls (Some callee) then
                        changed := true)
                    ci.reasons))
          n.calls)
      (Callgraph.nodes_in_order graph)
  done;
  t

let reasons t fn =
  (* Direct seed names double as pseudo-functions: asking for the
     reasons of "Sim.sleep" itself yields its own class. *)
  match seed_class fn with
  | Some cls -> [ (fn, cls) ]
  | None -> (
    if List.mem fn acquire_specials then [ (fn, Lock) ]
    else
      match Hashtbl.find_opt t.infos fn with
      | None -> []
      | Some i -> List.map (fun (s, (c, _)) -> (s, c)) i.reasons)

let may_block t fn ~classes =
  List.filter (fun (_, c) -> List.mem c classes) (reasons t fn)

(* Witness path fn -> ... -> seed, following the [via] links recorded
   during propagation. Bounded in case of (impossible) via cycles. *)
let chain t fn seed =
  let rec go acc fn depth =
    if depth > 64 then List.rev acc
    else if fn = seed || seed_class fn <> None then List.rev (fn :: acc)
    else
      match Hashtbl.find_opt t.infos fn with
      | None -> List.rev (fn :: acc)
      | Some i -> (
        match List.assoc_opt seed i.reasons with
        | Some (_, Some via) -> go (fn :: acc) via (depth + 1)
        | Some (_, None) -> List.rev (seed :: fn :: acc)
        | None -> List.rev (fn :: acc))
  in
  go [] fn 0
