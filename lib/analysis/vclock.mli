(** Vector clocks over process ids, the happens-before backbone of the
    race sanitizer. A clock maps each process to the count of its own
    events known to the clock's owner; absent processes are at 0.
    Clocks are immutable sorted association lists — small (a handful
    of processes per scenario) and cheap to merge. *)

type t

val empty : t

val get : t -> int -> int
(** Component for one process (0 if absent). *)

val tick : t -> int -> t
(** Advance one process's own component by 1. *)

val merge : t -> t -> t
(** Pointwise maximum: the join a process performs when it learns of
    another's progress (receive, ivar read, lock acquire, wakeup). *)

val leq : t -> t -> bool
(** Pointwise [<=]: [leq a b] iff everything [a] knows, [b] knows.
    For access clocks this is exactly happens-before-or-equal. *)

type order = Before | After | Equal | Concurrent

val compare_clocks : t -> t -> order
(** [Before] = strictly less ([leq] one way only), [Concurrent] =
    incomparable. *)

val to_string : t -> string
(** ["{0:3 2:1}"] — for violation reports. *)

val pp : Format.formatter -> t -> unit
