(** Model checker for the paper's Table 1 lock-compatibility matrix.

    Exhaustively exercises a real [Lock_manager] (not a model of it)
    against the paper's stated rules, each case in its own simulated
    world:

    - every held x requested mode pair, for two distinct transactions,
      at all three locking levels (36 cases);
    - every conversion sequence of length <= 3 by a single
      uncontended transaction: all granted, held mode is the
      strongest requested (117 cases);
    - conversions with a co-holder present, for both reachable
      two-holder states (RO,RO) and (RO,IR);
    - queue discipline: FIFO wake order, strict FIFO (no overtaking),
      upgrader priority, and the "no new RO after IR" rule. *)

type check = { name : string; ok : bool; detail : string }

val run : unit -> check list

val all_ok : check list -> bool

val failures : check list -> check list

val pp_report : Format.formatter -> check list -> unit
