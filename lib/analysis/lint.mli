(** Static lint pass over the repository's library code.

    Structured text analysis (comments, string and character literals
    are stripped first, so rule patterns never fire inside them) with
    a light token scan for the syntactic rules. Enforced rules:

    - {b no-wall-clock}: no [Unix.*], [Sys.time] or
      [Random.self_init] in library code — everything must run on
      simulated time and seeded randomness or runs stop being
      replayable;
    - {b no-direct-print}: library code never writes to stdout/stderr
      directly ([print_string], [Printf.printf], [prerr_endline], ...)
      — output goes through [Logging] or an observability exporter
      ([logging.ml] itself is the sanctioned sink);
    - {b no-catch-all}: no [try ... with _ ->] whose first handler
      pattern is the wildcard — it swallows [Sim.Killed] and
      unexpected errors ([match ... with _ ->] and record update
      [{ e with ... }] are not flagged);
    - {b missing-mli}: every [.ml] under the linted tree has a
      matching [.mli];
    - {b paired-release}: a file that acquires ([Semaphore.acquire],
      [Mutex.lock], [Lock_manager.acquire]/[try_acquire]) must also
      contain a matching release path (file-granularity pairing). *)

type violation = { file : string; line : int; rule : string; message : string }

val strip_comments_and_strings : string -> string
(** Blank out comments (nested), strings and character literals,
    preserving newlines (line numbers survive). *)

val lint_source : file:string -> string -> violation list
(** Text rules over one compilation unit's source. *)

val lint_dir : string -> violation list
(** Recursively lint every [.ml] under a directory (skipping [_build]
    and dot-directories), including the missing-mli check. *)

val pp_violation : Format.formatter -> violation -> unit
(** [file:line: [rule] message] — compiler-style, clickable. *)
