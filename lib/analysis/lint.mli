(** Static lint pass over the repository's library code.

    Structured text analysis (comments, string and character literals
    are stripped first, so rule patterns never fire inside them) with
    a light token scan for the syntactic rules. Enforced rules:

    - {b no-wall-clock}: no [Unix.*], [Sys.time] or
      [Random.self_init] in library code — everything must run on
      simulated time and seeded randomness or runs stop being
      replayable;
    - {b host-clock-hygiene} (Library profile): no host-clock
      identifier ([Unix.gettimeofday], [Unix.time], [Unix.times],
      [Sys.time], [Monotonic_clock.*]) outside [profiler.ml] — the
      profiler is the single sanctioned host-time reader, and its
      readings flow only into profiler-private accumulators, so host
      time can never leak into simulated state or digests;
    - {b no-direct-print}: library code never writes to stdout/stderr
      directly ([print_string], [Printf.printf], [prerr_endline], ...)
      — output goes through [Logging] or an observability exporter
      ([logging.ml] itself is the sanctioned sink);
    - {b no-catch-all}: no [try ... with _ ->] whose first handler
      pattern is the wildcard — it swallows [Sim.Killed] and
      unexpected errors ([match ... with _ ->] and record update
      [{ e with ... }] are not flagged);
    - {b no-unseeded-random} (Library profile): no [Random.int],
      [Random.bits], ... on the unseeded global state — randomness
      must come from a seeded [Random.State] (what [Rng] wraps) or
      the explorer and replay cannot reproduce a run;
    - {b hashtbl-iter-order} (Library profile): a [Hashtbl.iter] or
      [Hashtbl.fold] that accumulates a list (a [::] within ~400
      chars of the call) with no "sort" within ~1200 chars hands
      hash-bucket order to digests or callers — sort first
      (heuristic windows, like paired-release's file granularity);
    - {b global-mutable-state} (Library profile): no module-level
      [ref]/[Hashtbl.create]/[Queue.create]/[Buffer.create] binding
      (a [let] at indent <= 2 with no parameters) — such state is
      shared across simulation worlds, leaks between explorer runs
      and is invisible to the race sanitizer; superseded for
      parseable sources by the race pass's [unmonitored-shared-state]
      (which adds reachability), kept as the text fallback;
    - {b raw-shared-cell} (Library profile): fields migrated onto
      {!Rhodos_sim.Sim.Cell} (the file agent's [inflight]/
      [prefetched], the cache's [buffers], the lock manager's tables
      and [released] set) must not be touched by a raw
      [Hashtbl.* t.field], [t.field <-] or [t.field :=] — that
      mutates the payload without the access reaching the sanitizer;
      go through [Cell.get]/[Cell.update] ([peek] for analysis-only
      reads);
    - {b hot-path-alloc} (Library profile, sim.ml only): the
      top-level let-regions of [Sim.dispatch], [step] and [run] must
      use only the allocation-free queue accessors — any
      [Prio_queue.pop]/[pop_nth]/[peek]/[min_prio]/[ready]/
      [ready_count]/[drain] token there is flagged unless its raw
      source line carries a [static-ok: reason] comment;
    - {b missing-mli}: every [.ml] under the linted tree has a
      matching [.mli];
    - {b paired-release}: a file that acquires ([Semaphore.acquire],
      [Mutex.lock], [Lock_manager.acquire]/[try_acquire]) must also
      contain a matching release path (file-granularity pairing);
    - {b bench-emitter} (Bench profile only): every [exp_*.ml] calls
      [Json_out.register], so no experiment silently drops out of the
      committed BENCH_*.json perf record. *)

type violation = { file : string; line : int; rule : string; message : string }

val global_state_allowlist : string list
(** Basenames exempt from global-mutable-state. Empty since the last
    sanctioned globals were restructured away; kept so a future
    justified exemption has somewhere to live. *)

val instrumented_fields : (string * string list) list
(** Basename -> [Sim.Cell]-instrumented record fields, the
    raw-shared-cell rule's subject (shared with [Rhodos_static]). *)

type profile =
  | Library  (** strict: all rules, including no-direct-print and missing-mli *)
  | Bench
      (** bench/: experiments print tables and are executable modules, so
          no-direct-print and missing-mli are off; bench-emitter is on *)

val strip_comments_and_strings : string -> string
(** Blank out comments (nested), strings and character literals,
    preserving newlines (line numbers survive). *)

val lint_source : ?profile:profile -> file:string -> string -> violation list
(** Text rules over one compilation unit's source (default [Library]). *)

val lint_dir : ?profile:profile -> string -> violation list
(** Recursively lint every [.ml] under a directory (skipping [_build]
    and dot-directories); [Library] (the default) includes the
    missing-mli check. *)

val pp_violation : Format.formatter -> violation -> unit
(** [file:line: [rule] message] — compiler-style, clickable. *)
