module Sim = Rhodos_sim.Sim
module Trace = Rhodos_obs.Trace
module Lm = Rhodos_txn.Lock_manager
module Cache = Rhodos_cache.Buffer_cache

type access = {
  acc_time : float;
  acc_proc : int;
  acc_proc_name : string;
  acc_cell : int;
  acc_cell_name : string;
  acc_write : bool;
  acc_clock : Vclock.t;
  acc_locks : string list;
  acc_span : (int * int) option;
}

type violation = { v_kind : string; v_detail : string; v_time : float }

(* Eraser's per-cell state machine: no narrowing (and no reports)
   while a single process owns the cell; the candidate lockset starts
   at the first access by a second process and only an empty set in
   the write-shared state can fire. *)
type eraser = Virgin | Exclusive of int | Shared | Shared_modified

type cell_state = {
  mutable last_write : access option;
  mutable reads_since : access list;  (* reads since [last_write] *)
  mutable er_state : eraser;
  mutable er_lockset : string list option;  (* None until second proc *)
}

type t = {
  sim : Sim.t;
  tracer : Trace.t option;
  clocks : (int, Vclock.t) Hashtbl.t;  (* per-process vector clock *)
  msgs : (int * int, Vclock.t) Hashtbl.t;  (* (mailbox, msg) -> sender clock *)
  ivars : (int, Vclock.t) Hashtbl.t;
  sems : (int, Vclock.t) Hashtbl.t;  (* accumulated release clocks *)
  item_clocks : (string, Vclock.t) Hashtbl.t;  (* lock item -> release clock *)
  proc_names : (int, string) Hashtbl.t;
  cell_names : (int, string) Hashtbl.t;
  cells : (int, cell_state) Hashtbl.t;  (* Data cells only *)
  txn_proc : (int, int) Hashtbl.t;  (* txn -> owning process *)
  txn_locks : (int, (Lm.item * Lm.mode) list) Hashtbl.t;
  released_txns : (int, unit) Hashtbl.t;  (* txns past their shrink point *)
  reported : (string, unit) Hashtbl.t;  (* (object, kind) dedup keys *)
  mutable detachers : (unit -> unit) list;
  mutable viols : violation list;  (* newest first *)
  mutable accs : access list;  (* newest first *)
  mutable n_events : int;  (* monitor events processed (A5's work proxy) *)
}

let clock_of t p =
  match Hashtbl.find_opt t.clocks p with Some c -> c | None -> Vclock.empty

let tick t p =
  if p >= 0 then Hashtbl.replace t.clocks p (Vclock.tick (clock_of t p) p)

let join t p c =
  if p >= 0 then Hashtbl.replace t.clocks p (Vclock.merge (clock_of t p) c)

let proc_name t p =
  if p < 0 then "(outside any process)"
  else
    match Hashtbl.find_opt t.proc_names p with
    | Some n -> Printf.sprintf "%s(#%d)" n p
    | None -> Printf.sprintf "proc#%d" p

let cell_name t c =
  match Hashtbl.find_opt t.cell_names c with
  | Some n -> n
  | None -> Printf.sprintf "cell#%d" c

let report t ~dedup kind detail =
  let key = dedup ^ "/" ^ kind in
  if not (Hashtbl.mem t.reported key) then begin
    Hashtbl.replace t.reported key ();
    t.viols <-
      { v_kind = kind; v_detail = detail; v_time = Sim.now t.sim } :: t.viols
  end

(* Items held at an access: union over the transactions bound to the
   process. Sorted so intersection and reports are stable. *)
let lockset_of t p =
  Hashtbl.fold
    (fun txn proc acc ->
      if proc <> p then acc
      else
        match Hashtbl.find_opt t.txn_locks txn with
        | Some items ->
          List.fold_left
            (fun acc (it, _) -> Lm.item_to_string it :: acc)
            acc items
        | None -> acc)
    t.txn_proc []
  |> List.sort_uniq compare

let inter a b = List.filter (fun x -> List.mem x b) a

let describe_access a =
  Printf.sprintf "%s by %s at t=%.3f clock %s locks [%s]%s"
    (if a.acc_write then "write" else "read")
    a.acc_proc_name a.acc_time
    (Vclock.to_string a.acc_clock)
    (String.concat " " a.acc_locks)
    (match a.acc_span with
    | Some (tr, sp) -> Printf.sprintf " span %d.%d" tr sp
    | None -> "")

let cell_state_of t cell =
  match Hashtbl.find_opt t.cells cell with
  | Some st -> st
  | None ->
    let st =
      { last_write = None; reads_since = []; er_state = Virgin;
        er_lockset = None }
    in
    Hashtbl.replace t.cells cell st;
    st

let on_data_access t ~proc ~cell ~write =
  tick t proc;
  let acc =
    {
      acc_time = Sim.now t.sim;
      acc_proc = proc;
      acc_proc_name = proc_name t proc;
      acc_cell = cell;
      acc_cell_name = cell_name t cell;
      acc_write = write;
      acc_clock = clock_of t proc;
      acc_locks = lockset_of t proc;
      acc_span =
        (match t.tracer with
        | Some tr -> (
          match Trace.current tr with
          | Some c -> Some (Trace.context_ids c)
          | None -> None)
        | None -> None);
    }
  in
  t.accs <- acc :: t.accs;
  let st = cell_state_of t cell in
  (* Happens-before pass: the access conflicts with a prior one when
     they come from different processes, at least one writes, and the
     prior clock is not <= the current one (tick-then-join makes <=
     exactly happens-before here). *)
  let conflicts prev =
    prev.acc_proc <> proc
    && (write || prev.acc_write)
    && not (Vclock.leq prev.acc_clock acc.acc_clock)
  in
  let racy =
    match st.last_write with
    | Some w when conflicts w -> Some w
    | _ -> if write then List.find_opt conflicts st.reads_since else None
  in
  (match racy with
  | Some prev ->
    report t
      ~dedup:(Printf.sprintf "cell:%d" cell)
      "data-race"
      (Printf.sprintf "%s: %s is concurrent with %s" acc.acc_cell_name
         (describe_access prev) (describe_access acc))
  | None -> ());
  (* Lockset pass: narrow the candidate set from the second process
     on; fire on an empty set once write-shared, but only when the
     triggering pair is also unordered (a lock-free ownership handoff
     over a mailbox is not a report). *)
  (match st.er_state with
  | Virgin -> st.er_state <- Exclusive proc
  | Exclusive p when p = proc -> ()
  | Exclusive _ ->
    st.er_state <- (if write then Shared_modified else Shared);
    st.er_lockset <- Some acc.acc_locks
  | Shared ->
    st.er_lockset <-
      Some (inter (Option.value ~default:[] st.er_lockset) acc.acc_locks);
    if write then st.er_state <- Shared_modified
  | Shared_modified ->
    st.er_lockset <-
      Some (inter (Option.value ~default:[] st.er_lockset) acc.acc_locks));
  (match (st.er_state, st.er_lockset, racy) with
  | Shared_modified, Some [], Some prev ->
    report t
      ~dedup:(Printf.sprintf "cell:%d" cell)
      "lockset"
      (Printf.sprintf
         "%s is write-shared with an empty candidate lockset: %s then %s"
         acc.acc_cell_name (describe_access prev) (describe_access acc))
  | _ -> ());
  if write then begin
    st.last_write <- Some acc;
    st.reads_since <- []
  end
  else st.reads_since <- acc :: st.reads_since

let handle t (ev : Sim.mon_event) =
  t.n_events <- t.n_events + 1;
  match ev with
  | M_spawn { parent; child; name } ->
    Hashtbl.replace t.proc_names child name;
    tick t parent;
    join t child (clock_of t parent);
    tick t child
  | M_wake { by; target } ->
    if by >= 0 then begin
      tick t by;
      join t target (clock_of t by)
    end
  | M_send { proc; mailbox; msg } ->
    tick t proc;
    Hashtbl.replace t.msgs (mailbox, msg) (clock_of t proc)
  | M_recv { proc; mailbox; msg } ->
    tick t proc;
    (match Hashtbl.find_opt t.msgs (mailbox, msg) with
    | Some c ->
      join t proc c;
      Hashtbl.remove t.msgs (mailbox, msg)
    | None -> ())
  | M_ivar_fill { proc; ivar; double } ->
    if double then
      report t
        ~dedup:(Printf.sprintf "ivar:%d" ivar)
        "ivar-double-fill"
        (Printf.sprintf "ivar #%d filled twice; second fill by %s at t=%.3f"
           ivar (proc_name t proc) (Sim.now t.sim));
    tick t proc;
    let prev =
      Option.value ~default:Vclock.empty (Hashtbl.find_opt t.ivars ivar)
    in
    Hashtbl.replace t.ivars ivar (Vclock.merge prev (clock_of t proc))
  | M_ivar_read { proc; ivar } ->
    tick t proc;
    (match Hashtbl.find_opt t.ivars ivar with
    | Some c -> join t proc c
    | None -> ())
  | M_sem_acquire { proc; sem } ->
    tick t proc;
    (match Hashtbl.find_opt t.sems sem with
    | Some c -> join t proc c
    | None -> ())
  | M_sem_release { proc; sem } ->
    tick t proc;
    let prev =
      Option.value ~default:Vclock.empty (Hashtbl.find_opt t.sems sem)
    in
    Hashtbl.replace t.sems sem (Vclock.merge prev (clock_of t proc))
  | M_cell_created { cell; name; role = _ } ->
    Hashtbl.replace t.cell_names cell name
  | M_cell_read { proc; cell; role } -> (
    match role with
    | Sim.Data -> on_data_access t ~proc ~cell ~write:false
    | Sim.Sync -> ())
  | M_cell_write { proc; cell; role } -> (
    match role with
    | Sim.Data -> on_data_access t ~proc ~cell ~write:true
    | Sim.Sync -> ())

(* Table 1: on a grant to [txn], every conflicting active grant of
   another transaction must be compatible — read-only locks share with
   each other and with at most one Iread; Iwrite shares with
   nothing. *)
let mode_incompatible m1 m2 =
  match (m1, m2) with
  | Lm.Iwrite, _ | _, Lm.Iwrite -> true
  | Lm.Iread, Lm.Iread -> true
  | _ -> false

let own_grants t =
  Hashtbl.fold
    (fun txn items acc ->
      List.fold_left (fun acc (it, m) -> (txn, it, m) :: acc) acc items)
    t.txn_locks []
  |> List.sort compare

let check_table1 t ~grants ~txn ~item ~mode =
  List.iter
    (fun (txn', item', mode') ->
      if txn' <> txn && Lm.items_conflict item item'
         && mode_incompatible mode mode'
      then
        report t
          ~dedup:(Printf.sprintf "item:%s" (Lm.item_to_string item))
          "table1"
          (Printf.sprintf
             "incompatible grants on %s: txn %d holds %s while txn %d holds \
              %s on %s"
             (Lm.item_to_string item) txn (Lm.mode_to_string mode) txn'
             (Lm.mode_to_string mode') (Lm.item_to_string item')))
    grants

let lock_event t ~grants (ev : Lm.event) =
  match ev with
  | Ev_blocked { txn; _ } ->
    let p = Sim.current_proc_id t.sim in
    if p >= 0 && not (Hashtbl.mem t.txn_proc txn) then
      Hashtbl.replace t.txn_proc txn p
  | Ev_granted { txn; item; mode } ->
    let p =
      match Hashtbl.find_opt t.txn_proc txn with
      | Some p -> p
      | None ->
        let p = Sim.current_proc_id t.sim in
        if p >= 0 then Hashtbl.replace t.txn_proc txn p;
        p
    in
    if Hashtbl.mem t.released_txns txn then
      report t
        ~dedup:(Printf.sprintf "txn:%d" txn)
        "2pl"
        (Printf.sprintf
           "txn %d granted %s on %s after release_all (growing after the \
            shrink phase)"
           txn (Lm.mode_to_string mode) (Lm.item_to_string item));
    let held = Option.value ~default:[] (Hashtbl.find_opt t.txn_locks txn) in
    (match List.find_opt (fun (it, _) -> it = item) held with
    | Some (_, m) when Lm.mode_rank mode <= Lm.mode_rank m ->
      report t
        ~dedup:(Printf.sprintf "txn:%d:%s" txn (Lm.item_to_string item))
        "double-acquire"
        (Printf.sprintf "txn %d re-granted %s on %s while already holding %s"
           txn (Lm.mode_to_string mode) (Lm.item_to_string item)
           (Lm.mode_to_string m))
    | _ -> ());
    check_table1 t ~grants:(grants ()) ~txn ~item ~mode;
    Hashtbl.replace t.txn_locks txn
      ((item, mode) :: List.filter (fun (it, _) -> it <> item) held);
    if p >= 0 then begin
      tick t p;
      match Hashtbl.find_opt t.item_clocks (Lm.item_to_string item) with
      | Some c -> join t p c
      | None -> ()
    end
  | Ev_released { txn } ->
    (match Hashtbl.find_opt t.txn_locks txn with
    | None | Some [] ->
      report t
        ~dedup:(Printf.sprintf "txn:%d" txn)
        "release-without-hold"
        (Printf.sprintf "txn %d released with no lock recorded as held" txn)
    | Some items ->
      let p =
        match Hashtbl.find_opt t.txn_proc txn with
        | Some p -> p
        | None -> Sim.current_proc_id t.sim
      in
      if p >= 0 then begin
        tick t p;
        let c = clock_of t p in
        List.iter
          (fun (it, _) ->
            let key = Lm.item_to_string it in
            let prev =
              Option.value ~default:Vclock.empty
                (Hashtbl.find_opt t.item_clocks key)
            in
            Hashtbl.replace t.item_clocks key (Vclock.merge prev c))
          items
      end);
    Hashtbl.remove t.txn_locks txn;
    Hashtbl.replace t.released_txns txn ()
  | Ev_cancelled _ | Ev_suspected _ -> ()

let create ?tracer sim =
  let t =
    {
      sim;
      tracer;
      clocks = Hashtbl.create 32;
      msgs = Hashtbl.create 64;
      ivars = Hashtbl.create 32;
      sems = Hashtbl.create 16;
      item_clocks = Hashtbl.create 32;
      proc_names = Hashtbl.create 32;
      cell_names = Hashtbl.create 16;
      cells = Hashtbl.create 16;
      txn_proc = Hashtbl.create 16;
      txn_locks = Hashtbl.create 16;
      released_txns = Hashtbl.create 16;
      reported = Hashtbl.create 8;
      detachers = [];
      viols = [];
      accs = [];
      n_events = 0;
    }
  in
  Sim.set_monitor sim (Some (handle t));
  t

let attach_lock_manager t lm =
  let token =
    Lm.subscribe lm (lock_event t ~grants:(fun () -> Lm.active_grants lm))
  in
  t.detachers <- (fun () -> Lm.unsubscribe lm token) :: t.detachers

let attach_cache t ~name ~key_to_string cache =
  Cache.set_monitor cache
    (Some
       (fun (Cache.Use_after_evict k) ->
         report t
           ~dedup:(Printf.sprintf "cache:%s:%s" name (key_to_string k))
           "use-after-evict"
           (Printf.sprintf
              "cache %s: batch writeback persisted buffer %s after it was \
               evicted or replaced mid-batch (stale snapshot can clobber \
               newer durable bytes)"
              name (key_to_string k))));
  t.detachers <- (fun () -> Cache.set_monitor cache None) :: t.detachers

let feed_lock_event t ev = lock_event t ~grants:(fun () -> own_grants t) ev

let violations t = List.rev t.viols

let events_seen t = t.n_events

let accesses t = List.rev t.accs

let detach t =
  Sim.set_monitor t.sim None;
  List.iter (fun f -> f ()) t.detachers;
  t.detachers <- []
