module Sim = Rhodos_sim.Sim
module Lm = Rhodos_txn.Lock_manager

type check = { name : string; ok : bool; detail : string }

let modes = [ Lm.Read_only; Lm.Iread; Lm.Iwrite ]

let levels =
  [
    ("file", Lm.File_item 7);
    ("page", Lm.Page_item (7, 3));
    ("record", Lm.Record_item (7, 0, 64));
  ]

(* Zero search cost keeps every operation at t=0, so scenarios are
   not interleaved with simulated table-scan sleeps. *)
let quiet_config = { Lm.default_config with Lm.search_cost_ms = 0. }

let fresh_lm sim = Lm.create ~config:quiet_config ~sim ~on_suspect:(fun ~txn:_ -> ()) ()

(* Run one scenario to completion inside its own simulated world. *)
let in_sim f =
  let sim = Sim.create () in
  let out = ref None in
  ignore (Sim.spawn ~name:"model-check" sim (fun () -> out := Some (f sim)));
  Sim.run sim;
  match !out with
  | Some v -> v
  | None -> failwith "model check scenario did not finish"

let mode_name = Lm.mode_to_string

(* ------------------------------------------------------------------ *)
(* Table 1: held (by T1) x requested (by T2)                           *)
(* ------------------------------------------------------------------ *)

(* The paper's compatibility matrix for two distinct transactions:
   a free item admits everything; read-only admits further readers and
   one Iread but no Iwrite; Iread and Iwrite admit nothing (the
   "no new RO after IR" rule closes the writer-starvation window). *)
let expected_grant ~held ~req =
  match (held, req) with
  | None, _ -> true
  | Some Lm.Read_only, (Lm.Read_only | Lm.Iread) -> true
  | Some Lm.Read_only, Lm.Iwrite -> false
  | Some Lm.Iread, _ | Some Lm.Iwrite, _ -> false

let matrix_checks () =
  List.concat_map
    (fun (lname, item) ->
      List.concat_map
        (fun held ->
          List.map
            (fun req ->
              let got =
                in_sim (fun sim ->
                    let lm = fresh_lm sim in
                    (match held with
                    | Some h ->
                      if not (Lm.try_acquire lm ~txn:1 item h) then
                        failwith "setup grant refused"
                    | None -> ());
                    Lm.try_acquire lm ~txn:2 item req)
              in
              let want = expected_grant ~held ~req in
              {
                name =
                  Printf.sprintf "matrix %s held=%s req=%s" lname
                    (match held with None -> "free" | Some h -> mode_name h)
                    (mode_name req);
                ok = got = want;
                detail = Printf.sprintf "expected %b, lock manager said %b" want got;
              })
            modes)
        (None :: List.map Option.some modes))
    levels

(* ------------------------------------------------------------------ *)
(* Conversion sequences by a single transaction                        *)
(* ------------------------------------------------------------------ *)

let rec sequences n =
  if n = 0 then [ [] ]
  else
    List.concat_map
      (fun m -> List.map (fun s -> m :: s) (sequences (n - 1)))
      modes

(* With no other transaction present, every re-acquisition by the
   holder is granted and the held mode only ever strengthens (to the
   max rank seen so far) — downgrades are no-ops. *)
let conversion_checks () =
  List.concat_map
    (fun (lname, item) ->
      List.map
        (fun seq ->
          let got =
            in_sim (fun sim ->
                let lm = fresh_lm sim in
                let all_granted =
                  List.for_all (fun m -> Lm.try_acquire lm ~txn:1 item m) seq
                in
                (all_granted, Lm.holds lm ~txn:1 item))
          in
          let strongest =
            List.fold_left
              (fun acc m -> if Lm.mode_rank m > Lm.mode_rank acc then m else acc)
              Lm.Read_only seq
          in
          let want = (true, Some strongest) in
          {
            name =
              Printf.sprintf "convert %s seq=%s" lname
                (String.concat "->" (List.map mode_name seq));
            ok = got = want;
            detail =
              Printf.sprintf "expected (granted, held %s)"
                (mode_name strongest);
          })
        (sequences 1 @ sequences 2 @ sequences 3))
    levels

(* Conversions with a co-holder present. The only reachable two-holder
   states are (RO, RO) and (RO, IR); T1 may strengthen only while the
   matrix admits the target mode against the co-holder. *)
let coholder_checks () =
  let item = Lm.File_item 9 in
  let expected ~h1 ~h2 ~req =
    if Lm.mode_rank req <= Lm.mode_rank h1 then true
    else
      match req with
      | Lm.Read_only -> true
      | Lm.Iread -> h2 = Lm.Read_only
      | Lm.Iwrite -> false
  in
  List.concat_map
    (fun (h1, h2) ->
      List.map
        (fun req ->
          let got =
            in_sim (fun sim ->
                let lm = fresh_lm sim in
                if not (Lm.try_acquire lm ~txn:1 item h1) then
                  failwith "setup grant refused";
                if not (Lm.try_acquire lm ~txn:2 item h2) then
                  failwith "setup co-grant refused";
                Lm.try_acquire lm ~txn:1 item req)
          in
          let want = expected ~h1 ~h2 ~req in
          {
            name =
              Printf.sprintf "convert-with-coholder T1=%s T2=%s req=%s"
                (mode_name h1) (mode_name h2) (mode_name req);
            ok = got = want;
            detail = Printf.sprintf "expected %b, lock manager said %b" want got;
          })
        modes)
    [ (Lm.Read_only, Lm.Read_only); (Lm.Read_only, Lm.Iread) ]

(* ------------------------------------------------------------------ *)
(* Queue discipline                                                    *)
(* ------------------------------------------------------------------ *)

let scenario name ~detail f = { name; ok = in_sim f; detail }

let fifo_wake_order () =
  scenario "fifo wake order"
    ~detail:"three queued Iwrite waiters must be granted in arrival order"
    (fun sim ->
      let lm = fresh_lm sim in
      let item = Lm.File_item 1 in
      ignore (Lm.try_acquire lm ~txn:1 item Lm.Iwrite);
      let woken = ref [] in
      List.iter
        (fun id ->
          ignore
            (Sim.spawn ~name:"waiter" sim (fun () ->
                 Lm.acquire lm ~txn:id item Lm.Iwrite;
                 woken := !woken @ [ id ];
                 Lm.release_all lm ~txn:id)))
        [ 2; 3; 4 ];
      (* static-ok: may-block-under-lock scenario orchestration: the seed grant is held across the sleep on purpose, to let the spawned waiters queue in a known order; static-ok: leak-on-raise same justification — the probe releases via release_all right after *)
      Sim.sleep sim 1.;
      Lm.release_all lm ~txn:1;
      Sim.sleep sim 1.;
      !woken = [ 2; 3; 4 ])

let no_overtaking () =
  scenario "strict fifo (no overtaking)"
    ~detail:
      "a read-only waiter queued behind an Iwrite waiter must not be \
       granted ahead of it"
    (fun sim ->
      let lm = fresh_lm sim in
      let item = Lm.File_item 2 in
      ignore (Lm.try_acquire lm ~txn:1 item Lm.Iwrite);
      let woken = ref [] in
      ignore
        (Sim.spawn ~name:"writer" sim (fun () ->
             Lm.acquire lm ~txn:2 item Lm.Iwrite;
             woken := !woken @ [ 2 ]));
      ignore
        (Sim.spawn ~name:"reader" sim (fun () ->
             match Lm.acquire lm ~txn:3 item Lm.Read_only with
             | () -> woken := !woken @ [ 3 ]
             | exception Lm.Wait_cancelled _ -> ()));
      (* static-ok: may-block-under-lock scenario orchestration: the seed grant is held across the sleep on purpose, to let the spawned waiters queue in a known order; static-ok: leak-on-raise same justification — the probe releases via release_all right after *)
      Sim.sleep sim 1.;
      Lm.release_all lm ~txn:1;
      Sim.sleep sim 1.;
      let ok = !woken = [ 2 ] && Lm.holds lm ~txn:3 item = None in
      (* Unblock the parked reader so the scenario ends clean. *)
      Lm.cancel_waits lm ~txn:3;
      Lm.release_all lm ~txn:2;
      ok)

let upgrade_priority () =
  scenario "upgrader queues ahead"
    ~detail:
      "a blocked RO->IW conversion must be granted before a fresh Iwrite \
       request that arrived later"
    (fun sim ->
      let lm = fresh_lm sim in
      let item = Lm.File_item 3 in
      ignore (Lm.try_acquire lm ~txn:1 item Lm.Read_only);
      (* static-ok: leak-on-raise lock-table probe: txn 1 holds its RO grant across the second try_acquire on purpose to seed the shared mode; cancel_waits/release_all clean up at scenario end *)
      ignore (Lm.try_acquire lm ~txn:2 item Lm.Read_only);
      let woken = ref [] in
      ignore
        (Sim.spawn ~name:"upgrader" sim (fun () ->
             Lm.acquire lm ~txn:2 item Lm.Iwrite;
             woken := !woken @ [ 2 ]));
      ignore
        (Sim.spawn ~name:"fresh-writer" sim (fun () ->
             match Lm.acquire lm ~txn:3 item Lm.Iwrite with
             | () -> woken := !woken @ [ 3 ]
             | exception Lm.Wait_cancelled _ -> ()));
      (* static-ok: may-block-under-lock scenario orchestration: the seed grant is held across the sleep on purpose, to let the spawned waiters queue in a known order *)
      Sim.sleep sim 1.;
      Lm.release_all lm ~txn:1;
      Sim.sleep sim 1.;
      let ok =
        !woken = [ 2 ]
        && Lm.holds lm ~txn:2 item = Some Lm.Iwrite
        && Lm.holds lm ~txn:3 item = None
      in
      Lm.cancel_waits lm ~txn:3;
      Lm.release_all lm ~txn:2;
      ok)

let no_new_ro_after_ir () =
  scenario "no new RO after IR"
    ~detail:
      "once an Iread is in place no new read-only lock is admitted, a \
       second Iread is refused, and releasing the Iread readmits readers"
    (fun sim ->
      let lm = fresh_lm sim in
      let item = Lm.File_item 4 in
      let ro1 = Lm.try_acquire lm ~txn:1 item Lm.Read_only in
      let ir = Lm.try_acquire lm ~txn:2 item Lm.Iread in
      let ro_refused = not (Lm.try_acquire lm ~txn:3 item Lm.Read_only) in
      let ir_refused = not (Lm.try_acquire lm ~txn:4 item Lm.Iread) in
      Lm.release_all lm ~txn:2;
      let ro_readmitted = Lm.try_acquire lm ~txn:3 item Lm.Read_only in
      ro1 && ir && ro_refused && ir_refused && ro_readmitted)

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let run () =
  matrix_checks () @ conversion_checks () @ coholder_checks ()
  (* static-ok: may-block-under-lock each scenario runs in its own in_sim world; a grant left held when a scenario ends cannot outlive that world, so it is not held across the next scenario's sleeps *)
  @ [ fifo_wake_order (); no_overtaking (); upgrade_priority ();
      no_new_ro_after_ir () ]

let all_ok checks = List.for_all (fun c -> c.ok) checks

let failures checks = List.filter (fun c -> not c.ok) checks

let pp_report fmt checks =
  let failed = failures checks in
  Format.fprintf fmt "@[<v>%d checks, %d failed@ " (List.length checks)
    (List.length failed);
  List.iter
    (fun c -> Format.fprintf fmt "FAIL %s: %s@ " c.name c.detail)
    failed;
  Format.fprintf fmt "@]"
