(** Seeded lock-manager scenarios with a known ground truth, used by
    the [@analyze] alias and the test suite to validate the deadlock
    detector's true-deadlock / false-abort classification. *)

type deadlock_outcome = {
  true_deadlocks : int;   (** detector count after the run *)
  false_aborts : int;     (** detector count after the run *)
  cycle : int list option;  (** last cycle the detector reported *)
  aborted : int list;     (** transactions the suspect callback aborted *)
}

val two_cycle : unit -> deadlock_outcome
(** T1 and T2 acquire two items in opposite orders: a genuine
    deadlock. Expected: at least one suspicion classified as a true
    deadlock, a reported 2-cycle, and the run terminates (the abort
    unblocks the survivor). *)

val long_transaction_false_abort : unit -> deadlock_outcome
(** A long-running holder with a queued competitor and no cycle.
    Expected: the lease break aborts the holder and the detector
    classifies it as a false abort ([true_deadlocks = 0]). *)

(** {2 Explorer seed scenarios}

    Schedule-sensitive worlds for the bounded model checker
    ({!Explore.explore}), each carrying its own invariants. *)

val agent_read_write_race : unit -> Explore.scenario
(** The real file agent over a simulated remote store: a sequential
    reader whose read-ahead prefetches the blocks a concurrent writer
    overwrites. Invariants: after a final flush the server holds the
    writer's bytes, the agent's cache agrees, and nothing leaks. *)

val txn_lock_upgrade : unit -> Explore.scenario
(** Two transactions co-holding a read-only lock both upgrade to
    Iwrite — an upgrade deadlock in every schedule. Invariants: the
    section 6.4 lease break fires and is classified a true deadlock,
    Iwrite stays exclusive in every interleaving, lock tables drain,
    no 2PL violations. *)

val cache_midbatch_crash : unit -> Explore.scenario
(** A delayed-write pool crashing mid-batch while a mutator races the
    flusher. Invariants: the crash count equals the dirty set, and
    every key's latest bytes are durable, counted lost, or the single
    interrupted entry (per-entry written-thunk accounting). *)

val lost_update_model : fixed:bool -> unit -> Explore.scenario
(** Miniature model of the PR-3 client-cache lost update (a prefetch
    completion clobbering a concurrent local write). [~fixed:true]
    models the shipped fix and survives exhaustive exploration;
    [~fixed:false] deliberately reintroduces the bug — the explorer's
    negative control, violated only under the write-before-completion
    schedule. *)

val seeded_race_model : locked:bool -> unit -> Explore.scenario
(** The sanitizer's pinned negative control: two workers each
    read-modify-write one shared [Data] cell across a sleep.
    [~locked:false] is racy under {e every} schedule and must be
    reported by both the happens-before and the lockset pass;
    [~locked:true] brackets the RMW in an Iwrite lock and must stay
    clean (the grant/release edges order the accesses, the common
    lock fills the candidate lockset). *)

val explorer_scenarios :
  unit -> (string * Explore.bounds * Explore.scenario) list
(** The three seed scenarios above with their smoke-test bounds, in
    the order the [@explore] alias runs them. *)

val find_scenario : string -> Explore.scenario option
(** Look up any named scenario (seed scenarios, the two
    [lost-update-*] models, and the two [seeded-race-*] models) for
    [rhodos_analyze replay]. *)

(** {2 Crash-point sweeps} *)

val cache_crash_sweep : unit -> Explore.sweep
(** Pure [Buffer_cache] sweep: 6 dirty buffers, a per-entry batch
    writer, one run per injection point. A crash before entry [j]
    must lose exactly [6 - j] buffers. *)

val agent_crash_sweep : unit -> Explore.sweep
(** File-agent sweep over the coalesced range-pwrite path: dirty
    blocks forming three runs, a crash at each pwrite call. Runs
    already written must be durable with the written bytes; the
    interrupted run is the at-most-one-run loss window; every later
    block must be counted by [crash]. *)
