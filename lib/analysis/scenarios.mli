(** Seeded lock-manager scenarios with a known ground truth, used by
    the [@analyze] alias and the test suite to validate the deadlock
    detector's true-deadlock / false-abort classification. *)

type deadlock_outcome = {
  true_deadlocks : int;   (** detector count after the run *)
  false_aborts : int;     (** detector count after the run *)
  cycle : int list option;  (** last cycle the detector reported *)
  aborted : int list;     (** transactions the suspect callback aborted *)
}

val two_cycle : unit -> deadlock_outcome
(** T1 and T2 acquire two items in opposite orders: a genuine
    deadlock. Expected: at least one suspicion classified as a true
    deadlock, a reported 2-cycle, and the run terminates (the abort
    unblocks the survivor). *)

val long_transaction_false_abort : unit -> deadlock_outcome
(** A long-running holder with a queued competitor and no cycle.
    Expected: the lease break aborts the holder and the detector
    classifies it as a false abort ([true_deadlocks = 0]). *)
