(* Sorted (proc, count) assoc lists with counts >= 1; absent = 0. The
   canonical form (sorted, no zero entries) makes structural equality
   meaningful and keeps merge/leq a single linear walk. *)

type t = (int * int) list

let empty = []

let rec get t p =
  match t with
  | [] -> 0
  | (q, n) :: rest -> if q = p then n else if q > p then 0 else get rest p

let rec tick t p =
  match t with
  | [] -> [ (p, 1) ]
  | ((q, n) as e) :: rest ->
    if q = p then (q, n + 1) :: rest
    else if q > p then (p, 1) :: t
    else e :: tick rest p

let rec merge a b =
  match (a, b) with
  | [], t | t, [] -> t
  | ((p, n) as ea) :: ra, ((q, m) as eb) :: rb ->
    if p = q then (p, max n m) :: merge ra rb
    else if p < q then ea :: merge ra b
    else eb :: merge a rb

let rec leq a b =
  match (a, b) with
  | [], _ -> true
  | _ :: _, [] -> false
  | ((p, n) as ea) :: ra, (q, m) :: rb ->
    if p = q then n <= m && leq ra rb
    else if p > q then leq (ea :: ra) rb
    else (* p < q: a has a component b lacks *) false

type order = Before | After | Equal | Concurrent

let compare_clocks a b =
  match (leq a b, leq b a) with
  | true, true -> Equal
  | true, false -> Before
  | false, true -> After
  | false, false -> Concurrent

let to_string t =
  Printf.sprintf "{%s}"
    (String.concat " "
       (List.map (fun (p, n) -> Printf.sprintf "%d:%d" p n) t))

let pp fmt t = Format.pp_print_string fmt (to_string t)
