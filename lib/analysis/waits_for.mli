(** Transaction waits-for graph.

    Nodes are transaction ids; an edge [waiter -> blocker] means the
    waiter cannot proceed until the blocker releases a lock (or
    drains ahead of it in a FIFO queue). A cycle is a true deadlock;
    the paper's section 6.4 timeout scheme only {e suspects} deadlock,
    so a timeout abort whose transaction lies on no cycle is a false
    abort. *)

type t

val create : unit -> t

val of_edges : (int * int) list -> t
(** Graph from [(waiter, blocker)] pairs, e.g. the snapshot returned
    by [Lock_manager.waits_for_edges]. *)

val add_edge : t -> waiter:int -> blocker:int -> unit

val remove_node : t -> int -> unit
(** Delete a transaction and every edge touching it (commit/abort). *)

val nodes : t -> int list
(** Sorted. *)

val edges : t -> (int * int) list
(** Sorted [(waiter, blocker)] pairs. *)

val successors : t -> int -> int list
(** Who the given transaction waits for. *)

val cycle_through : t -> int -> int list option
(** A cycle passing through the given node, as the node sequence
    beginning with it ([[1; 2]] encodes T1 -> T2 -> T1); [None] if the
    node is on no cycle. *)

val find_cycle : t -> int list option
(** Any cycle in the graph. *)

val pp : Format.formatter -> t -> unit
