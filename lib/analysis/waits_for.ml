type t = { succs : (int, int list) Hashtbl.t }

let create () = { succs = Hashtbl.create 16 }

let successors t n = Option.value ~default:[] (Hashtbl.find_opt t.succs n)

let add_edge t ~waiter ~blocker =
  let cur = successors t waiter in
  if not (List.mem blocker cur) then
    Hashtbl.replace t.succs waiter (blocker :: cur);
  (* Register the blocker as a node even when it has no out-edges. *)
  if not (Hashtbl.mem t.succs blocker) then Hashtbl.replace t.succs blocker []

let of_edges edges =
  let t = create () in
  List.iter (fun (waiter, blocker) -> add_edge t ~waiter ~blocker) edges;
  t

let remove_node t n =
  Hashtbl.remove t.succs n;
  Hashtbl.iter
    (fun k succs ->
      if List.mem n succs then
        Hashtbl.replace t.succs k (List.filter (fun s -> s <> n) succs))
    t.succs

let nodes t =
  Hashtbl.fold (fun n _ acc -> n :: acc) t.succs [] |> List.sort compare

let edges t =
  Hashtbl.fold
    (fun n succs acc -> List.map (fun s -> (n, s)) succs @ acc)
    t.succs []
  |> List.sort compare

(* DFS from [start] looking for a path back to [start]; returns the
   cycle as the node sequence starting (and implicitly ending) at
   [start]. *)
let cycle_through t start =
  let visited = Hashtbl.create 16 in
  let rec dfs node path =
    (* [path] is start..node inclusive, reversed. *)
    let rec try_succs = function
      | [] -> None
      | s :: rest ->
        if s = start then Some (List.rev path)
        else if Hashtbl.mem visited s then try_succs rest
        else begin
          Hashtbl.replace visited s ();
          match dfs s (s :: path) with
          | Some _ as cycle -> cycle
          | None -> try_succs rest
        end
    in
    try_succs (successors t node)
  in
  Hashtbl.replace visited start ();
  dfs start [ start ]

let find_cycle t =
  let rec first = function
    | [] -> None
    | n :: rest -> (
      match cycle_through t n with Some _ as c -> c | None -> first rest)
  in
  first (nodes t)

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun (w, b) -> Format.fprintf fmt "T%d -> T%d@ " w b)
    (edges t);
  Format.fprintf fmt "@]"
