(** Connections from client agents to the remote services.

    The paper's agents (file agent, transaction agent) run on the
    client's machine and talk to the naming, file and transaction
    services, which "can either co-exist on the same machine or be
    located separately on different machines". Agents therefore
    depend only on these records of functions; the facade fills them
    in either with direct calls (co-located) or with RPC stubs over
    the simulated network (separate machines). *)

type fs_conn = {
  resolve : Rhodos_naming.Name_service.attributed_name -> int;
      (** attributed name -> system name (file id), via the naming
          service *)
  bind : path:string -> file_id:int -> unit;
  unbind : string -> unit;
  mkdir : string -> unit;
  create_file : unit -> int;
  open_file : int -> Rhodos_file.Fit.t;
      (** increments the reference count; returns the attributes *)
  close_file : int -> unit;
  delete_file : int -> unit;
  pread : int -> off:int -> len:int -> bytes;
  pread_stream :
    (int -> off:int -> len:int -> on_chunk:(off:int -> bytes -> unit) -> unit)
    option;
      (** Streamed range read: the server pushes the range back as
          block-aligned chunks as it reads them, each delivered to
          [on_chunk] (at-least-once, any order; the completion of the
          call itself is the end-of-stream marker). Chunks overlap the
          server's disk time with the wire, so one invocation replaces
          a per-block RPC convoy. [None] when the transport has no
          one-way channel (e.g. the co-located direct-call facade may
          instead deliver the whole range as a single chunk). Callers
          must tolerate missing chunks (message loss) by re-fetching
          the holes with plain [pread]. *)
  pwrite : int -> off:int -> data:bytes -> unit;
  get_attributes : int -> Rhodos_file.Fit.t;
  truncate : int -> size:int -> unit;
}

type txn_handle = int

type txn_conn = {
  tbegin : unit -> txn_handle;
  tcreate : locking:Rhodos_file.Fit.locking_level -> txn_handle -> int;
  topen : txn_handle -> int -> unit;
  tclose : txn_handle -> int -> unit;
  tdelete : txn_handle -> int -> unit;
  tread : txn_handle -> int -> off:int -> len:int -> intent_update:bool -> bytes;
  twrite : txn_handle -> int -> off:int -> data:bytes -> unit;
  tget_attribute : txn_handle -> int -> Rhodos_file.Fit.t;
  tend : txn_handle -> unit;
  tabort : txn_handle -> unit;
}
