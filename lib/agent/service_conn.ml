type fs_conn = {
  resolve : Rhodos_naming.Name_service.attributed_name -> int;
  bind : path:string -> file_id:int -> unit;
  unbind : string -> unit;
  mkdir : string -> unit;
  create_file : unit -> int;
  open_file : int -> Rhodos_file.Fit.t;
  close_file : int -> unit;
  delete_file : int -> unit;
  pread : int -> off:int -> len:int -> bytes;
  pread_stream :
    (int -> off:int -> len:int -> on_chunk:(off:int -> bytes -> unit) -> unit)
    option;
  pwrite : int -> off:int -> data:bytes -> unit;
  get_attributes : int -> Rhodos_file.Fit.t;
  truncate : int -> size:int -> unit;
}

type txn_handle = int

type txn_conn = {
  tbegin : unit -> txn_handle;
  tcreate : locking:Rhodos_file.Fit.locking_level -> txn_handle -> int;
  topen : txn_handle -> int -> unit;
  tclose : txn_handle -> int -> unit;
  tdelete : txn_handle -> int -> unit;
  tread : txn_handle -> int -> off:int -> len:int -> intent_update:bool -> bytes;
  twrite : txn_handle -> int -> off:int -> data:bytes -> unit;
  tget_attribute : txn_handle -> int -> Rhodos_file.Fit.t;
  tend : txn_handle -> unit;
  tabort : txn_handle -> unit;
}
