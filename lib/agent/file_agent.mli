(** The RHODOS file agent (paper section 3).

    One per client machine: "all client processes acquire the services
    of the distributed file facility through special processes known
    as a file agent". It

    - resolves attributed names through the naming service (with a
      client-side name cache),
    - hands out {e object descriptors} — always greater than 100 000,
      so descriptor values distinguish files from devices; 100 001 to
      100 003 are reserved for standard-stream redirection,
    - keeps per-descriptor state (the seek pointer for [read]/[write]/
      [lseek], the file's system name and cached size), making the
      remote file service "nearly stateless",
    - caches "a substantial amount of file data to avoid trying to
      access the file service for each request" — a block cache with
      the delayed-write modification policy, exactly the client-cache
      design the paper contrasts with Amoeba's Bullet server.

    Concurrent write sharing of a basic file between different
    machines is NOT kept consistent — the paper is explicit that "no
    effort [is] made to check the consistency ... of processes
    concurrently reading and writing data from/to the same file using
    the semantics of the basic file service". *)

type t

type desc = int

exception Bad_descriptor of int

type config = {
  cache_blocks : int;              (** 0 disables the client cache *)
  flush_interval_ms : float;       (** delayed-write period *)
  name_cache_entries : int;
  fetch_window : int;
      (** max concurrent fetch RPCs in flight (pipelining width);
          clamped to at least 1 *)
  max_fetch_blocks : int;
      (** max contiguous missing blocks coalesced into one range
          fetch; 1 reproduces the old per-block convoy *)
  read_ahead_blocks : int;
      (** cap on the adaptive sequential read-ahead window, in blocks;
          0 disables read-ahead. The per-descriptor window doubles on
          each sequential read (starting at 2) and resets on seek. *)
}

val default_config : config
(** 64 blocks, 1000 ms flush, 32 name-cache entries, fetch window 4,
    64-block coalescing, 16-block read-ahead cap. *)

val block_size : int
(** The agent's cache block size (8 KiB) — also the chunk granularity
    of the streamed range read. *)

val create :
  ?config:config ->
  ?tracer:Rhodos_obs.Trace.t ->
  sim:Rhodos_sim.Sim.t ->
  conn:Service_conn.fs_conn ->
  unit ->
  t
(** [tracer] wraps open/create and the data-path operations in
    ["file_agent"] spans; free when no subscriber is attached. *)

(** {1 The paper's file operations} *)

val create_file : t -> path:string -> desc
(** create + bind the name + open. *)

val open_file : t -> path:string -> desc
(** Resolve the attributed name [("type","FILE"); ("path", path)] and
    open. *)

val close : t -> desc -> unit
(** Flush this file's dirty cached blocks, close at the service, and
    retire the descriptor. *)

val delete : t -> path:string -> unit

val read : t -> desc -> int -> bytes
(** Read at the seek pointer, advancing it; short at EOF. Misses are
    fetched as coalesced range reads pipelined under [fetch_window];
    sequential access widens the adaptive read-ahead window. *)

val write : t -> desc -> bytes -> unit
(** Write at the seek pointer, advancing it. *)

val pread : t -> desc -> off:int -> len:int -> bytes
(** Positional read; does not move the seek pointer. *)

val pwrite : t -> desc -> off:int -> data:bytes -> unit

val lseek : t -> desc -> [ `Set of int | `Cur of int | `End of int ] -> int
(** Returns the new position. *)

val get_attribute : t -> desc -> Rhodos_file.Fit.t

val size : t -> desc -> int

(** {1 Redirection support (used by [Process_env])} *)

val open_redirect : t -> path:string -> slot:[ `Stdout | `Stdin | `Stderr ] -> desc
(** Open (creating if needed) at the reserved descriptor 100001 /
    100002 / 100003. *)

val is_file_descriptor : desc -> bool
(** [d > 100_000], the paper's discrimination rule. *)

(** {1 Maintenance} *)

val invalidate_file : t -> file:int -> unit
(** Drop the cached blocks of one file and refresh its cached size
    from the service. Used when the same machine's transaction agent
    commits changes to a file this agent may have cached ("the design
    of the caching module takes into consideration all the aspects of
    basic file and transaction services"). *)

val flush : t -> unit
(** Write every dirty cached block back to the file service. *)

val crash : t -> int
(** Client machine crash: all descriptors and cached data vanish;
    returns the number of dirty blocks lost. *)

val descriptor_file : t -> desc -> int
(** The system name behind a descriptor (for tests). *)

val open_count : t -> int

val stats : t -> Rhodos_util.Stats.Counter.t
(** ["reads"], ["writes"], ["remote_reads"], ["remote_writes"], plus
    the data-path counters: ["coalesced_block_reads"] /
    ["coalesced_block_writes"] (blocks saved a dedicated RPC by range
    coalescing), ["prefetch_issued"], ["prefetch_hits"],
    ["prefetch_wasted"] (read-ahead blocks evicted or invalidated
    unused). Cache counters: [cache_stats]. *)

val cache_stats : t -> Rhodos_util.Stats.Counter.t

val buffer_pool : t -> (int * int) Rhodos_cache.Buffer_cache.t
(** The agent's block pool, keyed by (file, block index) — exposed so
    the sanitizer can attach the cache protocol monitor
    ([Buffer_cache.set_monitor]). *)

val name_cache_stats : t -> Rhodos_util.Stats.Counter.t
