(** The RHODOS transaction agent (paper sections 3 and 6).

    The client-machine interface to the transaction service. It is
    {e event driven and highly dynamic}: "the first request to
    initiate a transaction in a client's machine brings this process
    into existence and it ceases to exist as soon as the last
    transaction in the client's machine either completes successfully
    or aborts" — observable here through [is_running] and
    [spawn_count].

    It offers the paper's separate transaction operation set (tbegin,
    tcreate, topen, tdelete, tread, tpread, twrite, tpwrite,
    tget-attribute, tlseek, tclose, tend, tabort), keeps the
    per-descriptor seek pointers, and hands out object descriptors
    greater than 100 000 like the file agent.

    Tentative data lives at the transaction service (where locks are
    checked); the agent's state is descriptors and names only. *)

type t

type tdesc = int
(** Transaction descriptor. *)

type desc = int
(** Object descriptor for a file opened under a transaction. *)

exception Bad_descriptor of int
exception Bad_transaction of int

val create :
  ?on_commit:(file:int -> unit) ->
  ?tracer:Rhodos_obs.Trace.t ->
  sim:Rhodos_sim.Sim.t ->
  fs_conn:Service_conn.fs_conn ->
  txn_conn:Service_conn.txn_conn ->
  unit ->
  t
(** [on_commit] is invoked after a successful [tend], once per file
    the transaction touched — the facade wires it to
    [File_agent.invalidate_file] so the machine's basic-file cache
    does not serve pre-transaction data. *)

val is_running : t -> bool
(** Whether the agent process currently exists. *)

val spawn_count : t -> int
(** How many times the agent has been brought into existence. *)

val active_transactions : t -> int

(** {1 Transaction operations} *)

val tbegin : t -> tdesc
(** Brings the agent process into existence if it was not running. *)

val tcreate :
  ?locking_level:Rhodos_file.Fit.locking_level ->
  t ->
  tdesc ->
  path:string ->
  desc
(** Create a transaction file and bind its name. *)

val topen : t -> tdesc -> path:string -> desc

val tclose : t -> tdesc -> desc -> unit

val tdelete : t -> tdesc -> path:string -> unit

val tread : t -> tdesc -> desc -> int -> bytes
(** Read at the descriptor's seek pointer (Iread locks: a
    transactional read is presumed to be read-for-update). *)

val tpread : t -> tdesc -> desc -> off:int -> len:int -> bytes

val twrite : t -> tdesc -> desc -> bytes -> unit

val tpwrite : t -> tdesc -> desc -> off:int -> data:bytes -> unit

val tlseek : t -> tdesc -> desc -> [ `Set of int | `Cur of int | `End of int ] -> int

val tget_attribute : t -> tdesc -> desc -> Rhodos_file.Fit.t

val tend : t -> tdesc -> unit
(** Commit; the agent process exits if this was the last
    transaction. *)

val tabort : t -> tdesc -> unit
