module Sim = Rhodos_sim.Sim
module Fit = Rhodos_file.Fit
module Trace = Rhodos_obs.Trace

type tdesc = int
type desc = int

exception Bad_descriptor of int
exception Bad_transaction of int

type open_state = { file : int; mutable pos : int }

type txn_state = {
  handle : Service_conn.txn_handle;
  descs : (desc, open_state) Hashtbl.t;
  mutable bound_paths : string list;
      (* names bound by tcreate, unbound again if the txn aborts *)
  mutable unbound_paths : (string * int) list;
      (* names removed by tdelete, re-bound if the txn aborts *)
}

type t = {
  sim : Sim.t;
  fs_conn : Service_conn.fs_conn;
  txn_conn : Service_conn.txn_conn;
  on_commit : file:int -> unit;
  txns : (tdesc, txn_state) Hashtbl.t;
  mutable next_tdesc : tdesc;
  mutable next_desc : desc;
  mutable agent_pid : Sim.pid option;
  agent_exit : Sim.Condition.cond;
  mutable spawn_count : int;
  tracer : Trace.t option;
}

let create ?(on_commit = fun ~file:_ -> ()) ?tracer ~sim ~fs_conn ~txn_conn () =
  {
    sim;
    fs_conn;
    txn_conn;
    on_commit;
    txns = Hashtbl.create 8;
    next_tdesc = 1;
    next_desc = 200_001;
    agent_pid = None;
    agent_exit = Sim.Condition.create sim;
    spawn_count = 0;
    tracer;
  }

let is_running t =
  match t.agent_pid with Some pid -> Sim.is_alive t.sim pid | None -> false

let spawn_count t = t.spawn_count

let active_transactions t = Hashtbl.length t.txns

(* The agent process itself: exists only while transactions are in
   flight (the paper's configurability goal). It parks on a condition
   and exits once the last transaction completes. *)
let ensure_agent t =
  if not (is_running t) then begin
    t.spawn_count <- t.spawn_count + 1;
    t.agent_pid <-
      Some
        (Sim.spawn ~name:"transaction-agent" t.sim (fun () ->
             while Hashtbl.length t.txns > 0 do
               Sim.Condition.wait t.agent_exit
             done))
  end

let maybe_exit_agent t =
  if Hashtbl.length t.txns = 0 then Sim.Condition.broadcast t.agent_exit

let txn t td =
  match Hashtbl.find_opt t.txns td with
  | Some s -> s
  | None -> raise (Bad_transaction td)

let state t td d =
  match Hashtbl.find_opt (txn t td).descs d with
  | Some s -> s
  | None -> raise (Bad_descriptor d)

let tbegin_impl t =
  let handle = t.txn_conn.Service_conn.tbegin () in
  let td = t.next_tdesc in
  t.next_tdesc <- td + 1;
  Hashtbl.replace t.txns td
    { handle; descs = Hashtbl.create 4; bound_paths = []; unbound_paths = [] };
  (* Register the transaction before starting the agent process, or a
     scheduling point would let it observe an empty table and exit. *)
  ensure_agent t;
  td

let tbegin t =
  Trace.maybe t.tracer ~service:"txn_agent" ~op:"tbegin" (fun () ->
      tbegin_impl t)

let fresh_desc t =
  let d = t.next_desc in
  t.next_desc <- d + 1;
  d

let install t td file =
  let d = fresh_desc t in
  Hashtbl.replace (txn t td).descs d { file; pos = 0 };
  d

let tcreate ?(locking_level = Fit.Page_level) t td ~path =
  let s = txn t td in
  let file = t.txn_conn.Service_conn.tcreate ~locking:locking_level s.handle in
  t.fs_conn.Service_conn.bind ~path ~file_id:file;
  s.bound_paths <- path :: s.bound_paths;
  install t td file

let topen t td ~path =
  let s = txn t td in
  let file = t.fs_conn.Service_conn.resolve [ ("type", "FILE"); ("path", path) ] in
  t.txn_conn.Service_conn.topen s.handle file;
  install t td file

let tclose t td d =
  let s = txn t td in
  let st = state t td d in
  t.txn_conn.Service_conn.tclose s.handle st.file;
  Hashtbl.remove s.descs d

let tdelete t td ~path =
  let s = txn t td in
  let file = t.fs_conn.Service_conn.resolve [ ("type", "FILE"); ("path", path) ] in
  t.txn_conn.Service_conn.tdelete s.handle file;
  t.fs_conn.Service_conn.unbind path;
  s.unbound_paths <- (path, file) :: s.unbound_paths

let tpread t td d ~off ~len =
  Trace.maybe t.tracer ~service:"txn_agent" ~op:"tpread"
    ~attrs:(fun () -> [ ("off", Trace.Int off); ("len", Trace.Int len) ])
    (fun () ->
      let s = txn t td in
      let st = state t td d in
      t.txn_conn.Service_conn.tread s.handle st.file ~off ~len
        ~intent_update:true)

let tread t td d len =
  let st = state t td d in
  let out = tpread t td d ~off:st.pos ~len in
  st.pos <- st.pos + Bytes.length out;
  out

let tpwrite t td d ~off ~data =
  Trace.maybe t.tracer ~service:"txn_agent" ~op:"tpwrite"
    ~attrs:(fun () ->
      [ ("off", Trace.Int off); ("len", Trace.Int (Bytes.length data)) ])
    (fun () ->
      let s = txn t td in
      let st = state t td d in
      t.txn_conn.Service_conn.twrite s.handle st.file ~off ~data)

let twrite t td d data =
  let st = state t td d in
  tpwrite t td d ~off:st.pos ~data;
  st.pos <- st.pos + Bytes.length data

let tget_attribute t td d =
  let s = txn t td in
  let st = state t td d in
  t.txn_conn.Service_conn.tget_attribute s.handle st.file

let tlseek t td d whence =
  let st = state t td d in
  let target =
    match whence with
    | `Set p -> p
    | `Cur delta -> st.pos + delta
    | `End delta -> (tget_attribute t td d).Fit.size + delta
  in
  if target < 0 then invalid_arg "tlseek: negative position";
  st.pos <- target;
  target

let finish t td f =
  let s = txn t td in
  Fun.protect
    ~finally:(fun () ->
      Hashtbl.remove t.txns td;
      maybe_exit_agent t)
    (fun () -> f s.handle)

(* An abort (explicit, or discovered when commit raises) must undo the
   naming side effects: unbind the names of aborted creations, re-bind
   the names of aborted deletions. *)
let cleanup_names t s =
  List.iter
    (fun path ->
      try t.fs_conn.Service_conn.unbind path
      with Rhodos_naming.Name_service.Name_not_found _ -> ())
    s.bound_paths;
  List.iter
    (fun (path, file) ->
      try t.fs_conn.Service_conn.bind ~path ~file_id:file
      with Rhodos_naming.Name_service.Already_bound _ -> ())
    s.unbound_paths

let tend_impl t td =
  let s = txn t td in
  (* The files this transaction touched: their blocks may be stale in
     the machine's file-agent cache once the commit lands. *)
  let touched =
    Hashtbl.fold (fun _ st acc -> st.file :: acc) s.descs []
    |> List.sort_uniq compare
  in
  match finish t td t.txn_conn.Service_conn.tend with
  | () -> List.iter (fun file -> t.on_commit ~file) touched
  | exception e ->
    (* The service aborted the transaction (e.g. a lock timeout). *)
    cleanup_names t s;
    raise e

let tend t td =
  Trace.maybe t.tracer ~service:"txn_agent" ~op:"tend" (fun () ->
      tend_impl t td)

let tabort t td =
  let s = txn t td in
  finish t td t.txn_conn.Service_conn.tabort;
  cleanup_names t s
