module Sim = Rhodos_sim.Sim
module Cache = Rhodos_cache.Buffer_cache
module Fit = Rhodos_file.Fit
module Counter = Rhodos_util.Stats.Counter
module Trace = Rhodos_obs.Trace

let block_size = 8192

type desc = int

exception Bad_descriptor of int

type config = {
  cache_blocks : int;
  flush_interval_ms : float;
  name_cache_entries : int;
}

let default_config =
  { cache_blocks = 64; flush_interval_ms = 1000.; name_cache_entries = 32 }

type open_state = { file : int; mutable pos : int }

type t = {
  sim : Sim.t;
  conn : Service_conn.fs_conn;
  config : config;
  descs : (desc, open_state) Hashtbl.t;
  sizes : (int, int ref) Hashtbl.t; (* file -> cached size *)
  cache : (int * int) Cache.t;      (* (file, block index) -> 8 KiB *)
  name_cache : (string, int) Hashtbl.t;
  mutable next_desc : desc;
  counters : Counter.t;
  name_counters : Counter.t;
  tracer : Trace.t option;
}

(* Reserved redirection descriptors (paper section 3). *)
let stdout_redirect = 100_001
let stdin_redirect = 100_002
let stderr_redirect = 100_003
let first_dynamic_desc = 100_004

let is_file_descriptor d = d > 100_000

let size_ref t file =
  match Hashtbl.find_opt t.sizes file with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Hashtbl.replace t.sizes file r;
    r

let create ?(config = default_config) ?tracer ~sim
    ~(conn : Service_conn.fs_conn) () =
  let sizes = Hashtbl.create 16 in
  let counters = Counter.create () in
  (* Write back one dirty block: trim to the file's logical size so a
     partial tail block does not extend the file with padding. *)
  let writeback (file, bi) data =
    let size = match Hashtbl.find_opt sizes file with Some r -> !r | None -> 0 in
    let len = min block_size (size - (bi * block_size)) in
    if len > 0 then begin
      Counter.incr counters "remote_writes";
      conn.Service_conn.pwrite file ~off:(bi * block_size)
        ~data:(if len = block_size then data else Bytes.sub data 0 len)
    end
  in
  {
    sim;
    conn;
    config;
    descs = Hashtbl.create 16;
    sizes;
    cache =
      Cache.create ~name:"file-agent-cache" ~sim
        ~capacity:(max 1 config.cache_blocks)
        ~policy:
          (if config.cache_blocks = 0 then Cache.Write_through
           else Cache.Delayed_write { flush_interval_ms = config.flush_interval_ms })
        ~writeback ();
    name_cache = Hashtbl.create 16;
    next_desc = first_dynamic_desc;
    counters;
    name_counters = Counter.create ();
    tracer;
  }

let stats t = t.counters
let cache_stats t = Cache.stats t.cache
let name_cache_stats t = t.name_counters
let open_count t = Hashtbl.length t.descs

let state t d =
  match Hashtbl.find_opt t.descs d with
  | Some s -> s
  | None -> raise (Bad_descriptor d)

let descriptor_file t d = (state t d).file

let resolve_path t path =
  match Hashtbl.find_opt t.name_cache path with
  | Some id ->
    Counter.incr t.name_counters "hits";
    id
  | None ->
    Counter.incr t.name_counters "misses";
    let id = t.conn.Service_conn.resolve [ ("type", "FILE"); ("path", path) ] in
    if Hashtbl.length t.name_cache >= t.config.name_cache_entries then
      Hashtbl.reset t.name_cache;
    Hashtbl.replace t.name_cache path id;
    id

let install t ~desc file attrs =
  (size_ref t file) := attrs.Fit.size;
  Hashtbl.replace t.descs desc { file; pos = 0 }

let fresh_desc t =
  let d = t.next_desc in
  t.next_desc <- d + 1;
  d

let open_file t ~path =
  Trace.maybe t.tracer ~service:"file_agent" ~op:"open"
    ~attrs:(fun () -> [ ("path", Trace.Str path) ])
    (fun () ->
      let file = resolve_path t path in
      let attrs = t.conn.Service_conn.open_file file in
      let d = fresh_desc t in
      install t ~desc:d file attrs;
      d)

let create_file_impl t ~path =
  let file = t.conn.Service_conn.create_file () in
  t.conn.Service_conn.bind ~path ~file_id:file;
  let attrs = t.conn.Service_conn.open_file file in
  let d = fresh_desc t in
  install t ~desc:d file attrs;
  d

let create_file t ~path =
  Trace.maybe t.tracer ~service:"file_agent" ~op:"create"
    ~attrs:(fun () -> [ ("path", Trace.Str path) ])
    (fun () -> create_file_impl t ~path)

let open_redirect t ~path ~slot =
  let d =
    match slot with
    | `Stdout -> stdout_redirect
    | `Stdin -> stdin_redirect
    | `Stderr -> stderr_redirect
  in
  let file =
    match resolve_path t path with
    | id -> id
    | exception
        Rhodos_naming.Name_service.(Name_not_found _ | Unresolvable _) ->
      let id = t.conn.Service_conn.create_file () in
      t.conn.Service_conn.bind ~path ~file_id:id;
      id
  in
  let attrs = t.conn.Service_conn.open_file file in
  (match Hashtbl.find_opt t.descs d with
  | Some old -> t.conn.Service_conn.close_file old.file
  | None -> ());
  install t ~desc:d file attrs;
  d

(* ------------------------------------------------------------------ *)
(* Cached data path                                                    *)
(* ------------------------------------------------------------------ *)

(* Fetch block [bi] of [file] into the cache (zero-padded to a full
   block); returns its bytes. *)
let load_block t file bi =
  match Cache.find t.cache (file, bi) with
  | Some data -> data
  | None ->
    Counter.incr t.counters "remote_reads";
    let fetched =
      t.conn.Service_conn.pread file ~off:(bi * block_size) ~len:block_size
    in
    let block =
      if Bytes.length fetched = block_size then fetched
      else begin
        let b = Bytes.make block_size '\000' in
        Bytes.blit fetched 0 b 0 (Bytes.length fetched);
        b
      end
    in
    Cache.insert_clean t.cache (file, bi) block;
    block

let pread_file_impl t file ~off ~len =
  Counter.incr t.counters "reads";
  let size = !(size_ref t file) in
  let len = max 0 (min len (size - off)) in
  if len = 0 then Bytes.empty
  else if t.config.cache_blocks = 0 then begin
    Counter.incr t.counters "remote_reads";
    t.conn.Service_conn.pread file ~off ~len
  end
  else begin
    let out = Bytes.create len in
    let b0 = off / block_size and b1 = (off + len - 1) / block_size in
    for bi = b0 to b1 do
      let data = load_block t file bi in
      let file_start = bi * block_size in
      let s = max off file_start and e = min (off + len) (file_start + block_size) in
      Bytes.blit data (s - file_start) out (s - off) (e - s)
    done;
    out
  end

let pread_file t file ~off ~len =
  Trace.maybe t.tracer ~service:"file_agent" ~op:"pread"
    ~attrs:(fun () ->
      [ ("file", Trace.Int file); ("off", Trace.Int off);
        ("len", Trace.Int len) ])
    (fun () -> pread_file_impl t file ~off ~len)

let pwrite_file_impl t file ~off ~data =
  Counter.incr t.counters "writes";
  let len = Bytes.length data in
  if len > 0 then begin
    let size = size_ref t file in
    if t.config.cache_blocks = 0 then begin
      Counter.incr t.counters "remote_writes";
      t.conn.Service_conn.pwrite file ~off ~data
    end
    else begin
      let b0 = off / block_size and b1 = (off + len - 1) / block_size in
      for bi = b0 to b1 do
        let file_start = bi * block_size in
        let s = max off file_start and e = min (off + len) (file_start + block_size) in
        let block =
          if s = file_start && e = file_start + block_size then
            Bytes.sub data (s - off) block_size
          else begin
            (* Partial block: start from the old content when the
               block already has bytes inside the file. *)
            let base =
              if file_start < !size then Bytes.copy (load_block t file bi)
              else Bytes.make block_size '\000'
            in
            Bytes.blit data (s - off) base (s - file_start) (e - s);
            base
          end
        in
        Cache.write t.cache (file, bi) block
      done
    end;
    if off + len > !size then size := off + len
  end

let pwrite_file t file ~off ~data =
  Trace.maybe t.tracer ~service:"file_agent" ~op:"pwrite"
    ~attrs:(fun () ->
      [ ("file", Trace.Int file); ("off", Trace.Int off);
        ("len", Trace.Int (Bytes.length data)) ])
    (fun () -> pwrite_file_impl t file ~off ~data)

(* ------------------------------------------------------------------ *)
(* Descriptor operations                                               *)
(* ------------------------------------------------------------------ *)

let read t d len =
  let s = state t d in
  let out = pread_file t s.file ~off:s.pos ~len in
  s.pos <- s.pos + Bytes.length out;
  out

let write t d data =
  let s = state t d in
  pwrite_file t s.file ~off:s.pos ~data;
  s.pos <- s.pos + Bytes.length data

let pread t d ~off ~len = pread_file t (state t d).file ~off ~len

let pwrite t d ~off ~data = pwrite_file t (state t d).file ~off ~data

let size t d = !(size_ref t (state t d).file)

let lseek t d whence =
  let s = state t d in
  let target =
    match whence with
    | `Set p -> p
    | `Cur delta -> s.pos + delta
    | `End delta -> !(size_ref t s.file) + delta
  in
  if target < 0 then invalid_arg "lseek: negative position";
  s.pos <- target;
  target

let get_attribute t d =
  let s = state t d in
  let a = t.conn.Service_conn.get_attributes s.file in
  (* The agent may hold newer (not yet flushed) size information. *)
  { a with Fit.size = max a.Fit.size !(size_ref t s.file) }

let flush_file t file =
  let size = !(size_ref t file) in
  let blocks = (size + block_size - 1) / block_size in
  for bi = 0 to blocks - 1 do
    Cache.flush_key t.cache (file, bi)
  done

let close t d =
  let s = state t d in
  flush_file t s.file;
  t.conn.Service_conn.close_file s.file;
  Hashtbl.remove t.descs d

let delete t ~path =
  let file = resolve_path t path in
  let size = !(size_ref t file) in
  for bi = 0 to ((size + block_size - 1) / block_size) - 1 do
    Cache.invalidate t.cache (file, bi)
  done;
  Hashtbl.remove t.name_cache path;
  Hashtbl.remove t.sizes file;
  t.conn.Service_conn.delete_file file;
  t.conn.Service_conn.unbind path

let invalidate_file t ~file =
  match Hashtbl.find_opt t.sizes file with
  | None -> () (* nothing of this file is cached *)
  | Some size ->
    for bi = 0 to ((!size + block_size - 1) / block_size) - 1 do
      Cache.invalidate t.cache (file, bi)
    done;
    (match t.conn.Service_conn.get_attributes file with
    | attrs -> size := attrs.Fit.size
    | exception _ -> Hashtbl.remove t.sizes file)

let flush t = Cache.flush t.cache

let crash t =
  let lost = Cache.crash t.cache in
  Hashtbl.reset t.descs;
  Hashtbl.reset t.sizes;
  Hashtbl.reset t.name_cache;
  lost
