module Sim = Rhodos_sim.Sim
module Cache = Rhodos_cache.Buffer_cache
module Fit = Rhodos_file.Fit
module Counter = Rhodos_util.Stats.Counter
module Trace = Rhodos_obs.Trace

let block_size = 8192

type desc = int

exception Bad_descriptor of int

type config = {
  cache_blocks : int;
  flush_interval_ms : float;
  name_cache_entries : int;
  fetch_window : int;
  max_fetch_blocks : int;
  read_ahead_blocks : int;
}

let default_config =
  {
    cache_blocks = 64;
    flush_interval_ms = 1000.;
    name_cache_entries = 32;
    fetch_window = 4;
    max_fetch_blocks = 64;
    read_ahead_blocks = 16;
  }

type open_state = {
  file : int;
  mutable pos : int;
  (* static-ok: static-race per-descriptor read-ahead state: open_file hands each client a fresh descriptor, so the pread RMW window only ever spans one owner's own reads *)
  mutable seq_next : int; (* offset the next read must start at to count as sequential *)
  mutable ra_window : int; (* current read-ahead width in blocks; 0 = cold *)
}

(* One in-flight block fetch; concurrent readers of the same block all
   wait on the same cell (single-flight dedup). *)
type fetch = (bytes, exn) result Sim.Ivar.ivar

(* [inflight] and [prefetched] are the prefetch bookkeeping that
   fetcher processes, readers and writers all race on — the hottest
   cross-process state in the agent. They live in instrumented
   [Sim.Cell]s (Sync role: single-flight dedup is lock-free by design
   in the cooperative simulator) so the sanitizer observes every
   access. *)
type t = {
  sim : Sim.t;
  conn : Service_conn.fs_conn;
  config : config;
  descs : (desc, open_state) Hashtbl.t;
  sizes : (int, int ref) Hashtbl.t; (* file -> cached size *)
  cache : (int * int) Cache.t;      (* (file, block index) -> 8 KiB *)
  inflight : (int * int, fetch) Hashtbl.t Sim.Cell.cell;
  prefetched : (int * int, unit) Hashtbl.t Sim.Cell.cell;
      (* read-ahead blocks not yet consumed *)
  fetch_slots : Sim.Semaphore.sem;  (* bounds concurrent fetch RPCs *)
  name_cache : (string, int) Hashtbl.t Sim.Cell.cell;
      (* path -> file id; racy lookup/RPC/insert windows, so the cell
         keeps every access on the sanitizer's books *)
  mutable next_desc : desc;
  counters : Counter.t;
  name_counters : Counter.t;
  tracer : Trace.t option;
}

(* Read / mutate a tracking table through its cell; [mut] runs the
   in-place mutation under an [update] so it registers as a write. *)
let tbl = Sim.Cell.get

let mut c f =
  Sim.Cell.update c (fun h ->
      f h;
      h)

(* Reserved redirection descriptors (paper section 3). *)
let stdout_redirect = 100_001
let stdin_redirect = 100_002
let stderr_redirect = 100_003
let first_dynamic_desc = 100_004

let is_file_descriptor d = d > 100_000

let size_ref t file =
  match Hashtbl.find_opt t.sizes file with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Hashtbl.replace t.sizes file r;
    r

(* Write one contiguous run of dirty blocks as a single range pwrite,
   trimmed to the file's logical size so a partial tail block does not
   extend the file with padding. [blocks] is ascending and contiguous;
   each carries the cache's mark-written thunk, invoked just before
   the run goes on the wire so a crash loses at most this one run. *)
let flush_run ~sizes ~counters ~(conn : Service_conn.fs_conn) file blocks =
  match blocks with
  | [] -> ()
  | (b0, _, _) :: _ ->
    let size = match Hashtbl.find_opt sizes file with Some r -> !r | None -> 0 in
    let bl = List.length blocks - 1 + b0 in
    let start = b0 * block_size in
    let stop = min ((bl + 1) * block_size) size in
    if stop > start then begin
      let out = Bytes.create (stop - start) in
      List.iter
        (fun (bi, data, _) ->
          let s = bi * block_size in
          let len = min block_size (stop - s) in
          if len > 0 then Bytes.blit data 0 out (s - start) len)
        blocks;
      Counter.incr counters "remote_writes";
      if List.length blocks > 1 then
        Counter.add counters "coalesced_block_writes" (List.length blocks - 1);
      List.iter (fun (_, _, written) -> written ()) blocks;
      conn.Service_conn.pwrite file ~off:start ~data:out
    end
    else
      (* Entirely beyond the logical size: nothing to persist. *)
      List.iter (fun (_, _, written) -> written ()) blocks

(* Regroup the dirty set into per-file runs of contiguous blocks, one
   range pwrite per run. Entries arrive oldest-dirty-first; files go
   out in order of their oldest dirty block, each file's runs in block
   order — so across flushes the oldest data still leaves first. *)
let writeback_batch ~sizes ~counters ~conn entries =
  let files = ref [] in
  let by_file = Hashtbl.create 8 in
  List.iter
    (fun ((file, bi), data, written) ->
      if not (Hashtbl.mem by_file file) then begin
        files := file :: !files;
        Hashtbl.replace by_file file []
      end;
      Hashtbl.replace by_file file
        ((bi, data, written) :: Hashtbl.find by_file file))
    entries;
  List.iter
    (fun file ->
      let blocks =
        List.sort
          (fun (a, _, _) (b, _, _) -> compare a b)
          (Hashtbl.find by_file file)
      in
      let rec runs acc cur = function
        | [] -> List.rev (List.rev cur :: acc)
        | (bi, data, written) :: rest -> (
          match cur with
          | (prev, _, _) :: _ when bi = prev + 1 ->
            runs acc ((bi, data, written) :: cur) rest
          | [] -> runs acc [ (bi, data, written) ] rest
          | _ -> runs (List.rev cur :: acc) [ (bi, data, written) ] rest)
      in
      List.iter (flush_run ~sizes ~counters ~conn file) (runs [] [] blocks))
    (List.rev !files)

let create ?(config = default_config) ?tracer ~sim
    ~(conn : Service_conn.fs_conn) () =
  let sizes = Hashtbl.create 16 in
  let counters = Counter.create () in
  let prefetched =
    Sim.Cell.create ~role:Sim.Sync ~name:"file_agent:prefetched" sim
      (Hashtbl.create 16)
  in
  (* Write back one dirty block (eviction path), trimmed like a run;
     the cache has already marked it clean. *)
  let writeback (file, bi) data =
    flush_run ~sizes ~counters ~conn file [ (bi, data, fun () -> ()) ]
  in
  let writeback_batch entries =
    Trace.maybe tracer ~service:"file_agent" ~op:"flush_batch"
      ~attrs:(fun () -> [ ("dirty", Trace.Int (List.length entries)) ])
      (fun () -> writeback_batch ~sizes ~counters ~conn entries)
  in
  let on_evict key =
    if Hashtbl.mem (tbl prefetched) key then begin
      mut prefetched (fun h -> Hashtbl.remove h key);
      Counter.incr counters "prefetch_wasted"
    end
  in
  {
    sim;
    conn;
    config;
    descs = Hashtbl.create 16;
    sizes;
    cache =
      Cache.create ~name:"file-agent-cache" ~writeback_batch ~on_evict ~sim
        ~capacity:(max 1 config.cache_blocks)
        ~policy:
          (if config.cache_blocks = 0 then Cache.Write_through
           else Cache.Delayed_write { flush_interval_ms = config.flush_interval_ms })
        ~writeback ();
    inflight =
      Sim.Cell.create ~role:Sim.Sync ~name:"file_agent:inflight" sim
        (Hashtbl.create 16);
    prefetched;
    fetch_slots = Sim.Semaphore.create sim (max 1 config.fetch_window);
    name_cache =
      Sim.Cell.create ~role:Sim.Sync ~name:"file_agent:name-cache" sim
        (Hashtbl.create 16);
    next_desc = first_dynamic_desc;
    counters;
    name_counters = Counter.create ();
    tracer;
  }

let stats t = t.counters
let cache_stats t = Cache.stats t.cache
let buffer_pool t = t.cache
let name_cache_stats t = t.name_counters
let open_count t = Hashtbl.length t.descs

let state t d =
  match Hashtbl.find_opt t.descs d with
  | Some s -> s
  | None -> raise (Bad_descriptor d)

let descriptor_file t d = (state t d).file

let resolve_path t path =
  match Hashtbl.find_opt (tbl t.name_cache) path with
  | Some id ->
    Counter.incr t.name_counters "hits";
    id
  | None ->
    Counter.incr t.name_counters "misses";
    let id = t.conn.Service_conn.resolve [ ("type", "FILE"); ("path", path) ] in
    mut t.name_cache (fun h ->
        if Hashtbl.length h >= t.config.name_cache_entries then
          Hashtbl.reset h;
        Hashtbl.replace h path id);
    id

let install t ~desc file attrs =
  (size_ref t file) := attrs.Fit.size;
  Hashtbl.replace t.descs desc { file; pos = 0; seq_next = 0; ra_window = 0 }

let fresh_desc t =
  let d = t.next_desc in
  t.next_desc <- d + 1;
  d

let open_file t ~path =
  Trace.maybe t.tracer ~service:"file_agent" ~op:"open"
    ~attrs:(fun () -> [ ("path", Trace.Str path) ])
    (fun () ->
      let file = resolve_path t path in
      let attrs = t.conn.Service_conn.open_file file in
      let d = fresh_desc t in
      install t ~desc:d file attrs;
      d)

let create_file_impl t ~path =
  let file = t.conn.Service_conn.create_file () in
  t.conn.Service_conn.bind ~path ~file_id:file;
  let attrs = t.conn.Service_conn.open_file file in
  let d = fresh_desc t in
  install t ~desc:d file attrs;
  d

let create_file t ~path =
  Trace.maybe t.tracer ~service:"file_agent" ~op:"create"
    ~attrs:(fun () -> [ ("path", Trace.Str path) ])
    (fun () -> create_file_impl t ~path)

let open_redirect t ~path ~slot =
  let d =
    match slot with
    | `Stdout -> stdout_redirect
    | `Stdin -> stdin_redirect
    | `Stderr -> stderr_redirect
  in
  let file =
    match resolve_path t path with
    | id -> id
    | exception
        Rhodos_naming.Name_service.(Name_not_found _ | Unresolvable _) ->
      let id = t.conn.Service_conn.create_file () in
      t.conn.Service_conn.bind ~path ~file_id:id;
      id
  in
  let attrs = t.conn.Service_conn.open_file file in
  (match Hashtbl.find_opt t.descs d with
  | Some old -> t.conn.Service_conn.close_file old.file
  | None -> ());
  install t ~desc:d file attrs;
  d

(* ------------------------------------------------------------------ *)
(* Cached data path: coalesced, pipelined, single-flight fetches        *)
(* ------------------------------------------------------------------ *)

let pad_block fetched =
  if Bytes.length fetched = block_size then fetched
  else begin
    let b = Bytes.make block_size '\000' in
    Bytes.blit fetched 0 b 0 (Bytes.length fetched);
    b
  end

(* Publish a fetched block: insert into the cache and wake the waiters.
   The inflight registration is re-checked by physical identity — a
   crash or invalidation between issue and completion clears it, and a
   superseded fetch must not resurrect stale data into the cache (its
   waiters still get the bytes they asked for). *)
let complete_block t iv file bi block =
  (match Hashtbl.find_opt (tbl t.inflight) (file, bi) with
  | Some iv' when iv' == iv ->
    mut t.inflight (fun h -> Hashtbl.remove h (file, bi));
    Cache.insert_clean t.cache (file, bi) block
  | Some _ | None -> ());
  Sim.Ivar.fill iv (Ok block)

let fail_block t iv file bi e =
  (match Hashtbl.find_opt (tbl t.inflight) (file, bi) with
  | Some iv' when iv' == iv ->
    mut t.inflight (fun h -> Hashtbl.remove h (file, bi));
    (* A failed read-ahead delivered nothing: drop its reservation so
       a later demand read of the block cannot count a phantom
       prefetch hit (counted as neither hit nor waste). *)
    mut t.prefetched (fun h -> Hashtbl.remove h (file, bi))
  | Some _ | None -> ());
  if not (Sim.Ivar.is_filled iv) then Sim.Ivar.fill iv (Error e)

(* Fetch one contiguous run [c0..c1] whose cells are already registered
   in [t.inflight]. One remote read per run: streamed when the
   connection supports it and the run spans several blocks (the server
   pushes chunks as it reads, overlapping disk and wire), a plain range
   pread otherwise. Lost stream chunks are re-fetched individually.
   Failures are delivered through the cells, never raised: this runs in
   detached fetcher processes. *)
let run_fetch t file ivars c0 c1 =
  let nblocks = c1 - c0 + 1 in
  let deliver_range ~off data =
    if off mod block_size = 0 then begin
      let nb = (Bytes.length data + block_size - 1) / block_size in
      for k = 0 to nb - 1 do
        let bi = (off / block_size) + k in
        match List.assoc_opt bi ivars with
        | Some iv when not (Sim.Ivar.is_filled iv) ->
          let boff = k * block_size in
          let avail = min block_size (Bytes.length data - boff) in
          complete_block t iv file bi (pad_block (Bytes.sub data boff avail))
        | Some _ | None -> ()
      done
    end
  in
  try
    (match t.conn.Service_conn.pread_stream with
    | Some stream when nblocks > 1 ->
      Counter.incr t.counters "remote_reads";
      stream file ~off:(c0 * block_size) ~len:(nblocks * block_size)
        ~on_chunk:deliver_range;
      (* Holes (lost chunks) fall back to plain per-block preads. *)
      List.iter
        (fun (bi, iv) ->
          if not (Sim.Ivar.is_filled iv) then begin
            Counter.incr t.counters "remote_reads";
            let data =
              t.conn.Service_conn.pread file ~off:(bi * block_size)
                ~len:block_size
            in
            if not (Sim.Ivar.is_filled iv) then
              complete_block t iv file bi (pad_block data)
          end)
        ivars
    | Some _ | None ->
      Counter.incr t.counters "remote_reads";
      let data =
        t.conn.Service_conn.pread file ~off:(c0 * block_size)
          ~len:(nblocks * block_size)
      in
      deliver_range ~off:(c0 * block_size) data;
      (* A short read (range beyond EOF) leaves tail cells unfilled:
         publish them as zero blocks, as the per-block path did. *)
      List.iter
        (fun (bi, iv) ->
          if not (Sim.Ivar.is_filled iv) then
            complete_block t iv file bi (Bytes.make block_size '\000'))
        ivars);
    if nblocks > 1 then Counter.add t.counters "coalesced_block_reads" (nblocks - 1)
  with
  | Sim.Killed as e ->
    List.iter
      (fun (bi, iv) ->
        fail_block t iv file bi (Failure "file_agent: fetch aborted"))
      ivars;
    raise e
  | e -> List.iter (fun (bi, iv) -> fail_block t iv file bi e) ivars

(* Register cells for [c0..c1], split by [max_fetch_blocks], and spawn
   one fetcher process per piece; the window semaphore bounds how many
   fetch RPCs are actually in flight. Returns every (block, cell)
   registered, in ascending block order. *)
let issue_fetch t file c0 c1 ~prefetch =
  let maxb = max 1 t.config.max_fetch_blocks in
  let pieces = ref [] in
  let p0 = ref c0 in
  while !p0 <= c1 do
    let p1 = min c1 (!p0 + maxb - 1) in
    let ivars =
      List.init (p1 - !p0 + 1) (fun i ->
          let bi = !p0 + i in
          let iv = Sim.Ivar.create t.sim in
          mut t.inflight (fun h -> Hashtbl.replace h (file, bi) iv);
          (bi, iv))
    in
    if prefetch then begin
      Counter.add t.counters "prefetch_issued" (List.length ivars);
      mut t.prefetched (fun h ->
          List.iter (fun (bi, _) -> Hashtbl.replace h (file, bi) ()) ivars)
    end;
    pieces := (!p0, p1, ivars) :: !pieces;
    p0 := p1 + 1
  done;
  let pieces = List.rev !pieces in
  List.iter
    (fun (p0, p1, ivars) ->
      ignore
        (Sim.spawn ~name:"fa-fetch" t.sim (fun () ->
             let fetch () =
               Sim.Semaphore.with_acquire t.fetch_slots (fun () ->
                   run_fetch t file ivars p0 p1)
             in
             if prefetch then
               Trace.maybe t.tracer ~service:"file_agent" ~op:"read_ahead"
                 ~attrs:(fun () ->
                   [ ("file", Trace.Int file); ("first_block", Trace.Int p0);
                     ("blocks", Trace.Int (p1 - p0 + 1)) ])
                 fetch
             else fetch ())))
    pieces;
  List.concat_map (fun (_, _, ivars) -> ivars) pieces

let await iv =
  match Sim.Ivar.read iv with Ok data -> data | Error e -> raise e

let note_prefetch_hit t file bi =
  if Hashtbl.mem (tbl t.prefetched) (file, bi) then begin
    mut t.prefetched (fun h -> Hashtbl.remove h (file, bi));
    Counter.incr t.counters "prefetch_hits"
  end

(* Forget everything tracked about a block that is being superseded
   (written over, invalidated, deleted): the in-flight registration —
   so a fetch completing later fails complete_block's identity check
   instead of clobbering newer data — and any unconsumed read-ahead
   reservation, which is now wasted. *)
let drop_block_tracking t file bi =
  mut t.inflight (fun h -> Hashtbl.remove h (file, bi));
  if Hashtbl.mem (tbl t.prefetched) (file, bi) then begin
    mut t.prefetched (fun h -> Hashtbl.remove h (file, bi));
    Counter.incr t.counters "prefetch_wasted"
  end

(* Issue read-ahead for up to [ra] blocks past [b1], skipping anything
   cached or already in flight. Fire-and-forget: the reader never waits
   on these. *)
let issue_read_ahead t file ~b1 ~ra ~size =
  if ra > 0 && size > 0 then begin
    let last_block = (size - 1) / block_size in
    let p0 = b1 + 1 and p1 = min (b1 + ra) last_block in
    let i = ref p0 in
    while !i <= p1 do
      if Cache.mem t.cache (file, !i) || Hashtbl.mem (tbl t.inflight) (file, !i)
      then incr i
      else begin
        let j = ref !i in
        while
          !j + 1 <= p1
          && (not (Cache.mem t.cache (file, !j + 1)))
          && not (Hashtbl.mem (tbl t.inflight) (file, !j + 1))
        do
          incr j
        done;
        ignore (issue_fetch t file !i !j ~prefetch:true);
        i := !j + 1
      end
    done
  end

(* The read path: classify every needed block (cached / in flight /
   missing), issue one coalesced fetch per missing run, kick off
   read-ahead, then assemble — waiting only on the cells this read
   needs. Independent runs fetch concurrently under the window. *)
let pread_core t file ~off ~len ~ra =
  Counter.incr t.counters "reads";
  let size = !(size_ref t file) in
  let len = max 0 (min len (size - off)) in
  if len = 0 then Bytes.empty
  else if t.config.cache_blocks = 0 then begin
    Counter.incr t.counters "remote_reads";
    t.conn.Service_conn.pread file ~off ~len
  end
  else begin
    let b0 = off / block_size and b1 = (off + len - 1) / block_size in
    let n = b1 - b0 + 1 in
    let slots = Array.make n `Miss in
    for i = 0 to n - 1 do
      let bi = b0 + i in
      note_prefetch_hit t file bi;
      match Cache.find t.cache (file, bi) with
      | Some data -> slots.(i) <- `Have data
      | None -> (
        match Hashtbl.find_opt (tbl t.inflight) (file, bi) with
        | Some iv -> slots.(i) <- `Wait iv
        | None -> ())
    done;
    let i = ref 0 in
    while !i < n do
      match slots.(!i) with
      | `Miss ->
        let j = ref !i in
        while
          !j + 1 < n && (match slots.(!j + 1) with `Miss -> true | _ -> false)
        do
          incr j
        done;
        List.iter
          (fun (bi, iv) -> slots.(bi - b0) <- `Wait iv)
          (issue_fetch t file (b0 + !i) (b0 + !j) ~prefetch:false);
        i := !j + 1
      | _ -> incr i
    done;
    issue_read_ahead t file ~b1 ~ra ~size;
    let out = Bytes.create len in
    for i = 0 to n - 1 do
      let bi = b0 + i in
      let data =
        match slots.(i) with
        | `Have data -> data
        | `Wait iv -> await iv
        | `Miss -> assert false
      in
      let file_start = bi * block_size in
      let s = max off file_start
      and e = min (off + len) (file_start + block_size) in
      Bytes.blit data (s - file_start) out (s - off) (e - s)
    done;
    out
  end

let pread_file_ra t file ~off ~len ~ra =
  Trace.maybe t.tracer ~service:"file_agent" ~op:"pread"
    ~attrs:(fun () ->
      [ ("file", Trace.Int file); ("off", Trace.Int off);
        ("len", Trace.Int len) ])
    (fun () -> pread_core t file ~off ~len ~ra)

(* Per-descriptor adaptive read-ahead: a read starting exactly where
   the previous one ended doubles the window (capped by the config); a
   seek anywhere else resets it to cold. *)
let pread_desc t s ~off ~len =
  (if off = s.seq_next then
     s.ra_window <- min t.config.read_ahead_blocks (max 2 (s.ra_window * 2))
   else s.ra_window <- 0);
  let out = pread_file_ra t s.file ~off ~len ~ra:s.ra_window in
  s.seq_next <- off + Bytes.length out;
  out

(* Fetch a single block through the same single-flight machinery (used
   by partial-block writes that must read-modify-write). Consuming a
   read-ahead block as the RMW base counts as a prefetch hit. *)
let load_block t file bi =
  let data =
    match Cache.find t.cache (file, bi) with
    | Some data -> data
    | None -> (
      match Hashtbl.find_opt (tbl t.inflight) (file, bi) with
      | Some iv -> await iv
      | None -> (
        match issue_fetch t file bi bi ~prefetch:false with
        | [ (_, iv) ] -> await iv
        | _ -> assert false))
  in
  note_prefetch_hit t file bi;
  data

let pwrite_file_impl t file ~off ~data =
  Counter.incr t.counters "writes";
  let len = Bytes.length data in
  if len > 0 then begin
    let size = size_ref t file in
    if t.config.cache_blocks = 0 then begin
      Counter.incr t.counters "remote_writes";
      t.conn.Service_conn.pwrite file ~off ~data
    end
    else begin
      let b0 = off / block_size and b1 = (off + len - 1) / block_size in
      for bi = b0 to b1 do
        let file_start = bi * block_size in
        let s = max off file_start and e = min (off + len) (file_start + block_size) in
        let block =
          if s = file_start && e = file_start + block_size then
            Bytes.sub data (s - off) block_size
          else begin
            (* Partial block: start from the old content when the
               block already has bytes inside the file. *)
            let base =
              if file_start < !size then Bytes.copy (load_block t file bi)
              else Bytes.make block_size '\000'
            in
            Bytes.blit data (s - off) base (s - file_start) (e - s);
            base
          end
        in
        (* The write supersedes any fetch still in flight for this
           block (e.g. a read-ahead): deregister it so its completion
           cannot replace the new dirty data with stale bytes — it
           would insert as clean while leaving the block marked dirty,
           losing this write on the next flush. Waiters on the old
           cell still get the bytes they asked for. *)
        drop_block_tracking t file bi;
        Cache.write t.cache (file, bi) block
      done
    end;
    if off + len > !size then size := off + len
  end

let pwrite_file t file ~off ~data =
  Trace.maybe t.tracer ~service:"file_agent" ~op:"pwrite"
    ~attrs:(fun () ->
      [ ("file", Trace.Int file); ("off", Trace.Int off);
        ("len", Trace.Int (Bytes.length data)) ])
    (fun () -> pwrite_file_impl t file ~off ~data)

(* ------------------------------------------------------------------ *)
(* Descriptor operations                                               *)
(* ------------------------------------------------------------------ *)

let read t d len =
  let s = state t d in
  let out = pread_desc t s ~off:s.pos ~len in
  s.pos <- s.pos + Bytes.length out;
  out

let write t d data =
  let s = state t d in
  pwrite_file t s.file ~off:s.pos ~data;
  s.pos <- s.pos + Bytes.length data

let pread t d ~off ~len =
  let s = state t d in
  pread_desc t s ~off ~len

let pwrite t d ~off ~data = pwrite_file t (state t d).file ~off ~data

let size t d = !(size_ref t (state t d).file)

let lseek t d whence =
  let s = state t d in
  let target =
    match whence with
    | `Set p -> p
    | `Cur delta -> s.pos + delta
    | `End delta -> !(size_ref t s.file) + delta
  in
  if target < 0 then invalid_arg "lseek: negative position";
  s.pos <- target;
  target

let get_attribute t d =
  let s = state t d in
  let a = t.conn.Service_conn.get_attributes s.file in
  (* The agent may hold newer (not yet flushed) size information. *)
  { a with Fit.size = max a.Fit.size !(size_ref t s.file) }

let flush_file t file =
  let size = !(size_ref t file) in
  let blocks = (size + block_size - 1) / block_size in
  Cache.flush_keys t.cache (List.init blocks (fun bi -> (file, bi)))

let close t d =
  let s = state t d in
  flush_file t s.file;
  t.conn.Service_conn.close_file s.file;
  Hashtbl.remove t.descs d

let delete t ~path =
  let file = resolve_path t path in
  let size = !(size_ref t file) in
  for bi = 0 to ((size + block_size - 1) / block_size) - 1 do
    Cache.invalidate t.cache (file, bi);
    drop_block_tracking t file bi
  done;
  mut t.name_cache (fun h -> Hashtbl.remove h path);
  Hashtbl.remove t.sizes file;
  t.conn.Service_conn.delete_file file;
  t.conn.Service_conn.unbind path

let invalidate_file t ~file =
  match Hashtbl.find_opt t.sizes file with
  | None -> () (* nothing of this file is cached *)
  | Some size ->
    for bi = 0 to ((!size + block_size - 1) / block_size) - 1 do
      Cache.invalidate t.cache (file, bi);
      drop_block_tracking t file bi
    done;
    (match t.conn.Service_conn.get_attributes file with
    | attrs -> size := attrs.Fit.size
    | exception (Sim.Killed as k) -> raise k
    | exception _ -> Hashtbl.remove t.sizes file)

let flush t = Cache.flush t.cache

let crash t =
  let lost = Cache.crash t.cache in
  Hashtbl.reset t.descs;
  Hashtbl.reset t.sizes;
  mut t.name_cache (fun h -> Hashtbl.reset h);
  (* In-flight fetches may still complete; clearing the registrations
     keeps them from resurrecting pre-crash data into the fresh cache. *)
  mut t.inflight (fun h -> Hashtbl.reset h);
  mut t.prefetched (fun h -> Hashtbl.reset h);
  lost
