type strategy = step:int -> n_ready:int -> int

let fifo ~step:_ ~n_ready:_ = 0

let lifo ~step:_ ~n_ready = n_ready - 1

let of_list choices =
  let arr = Array.of_list choices in
  fun ~step ~n_ready:_ -> if step < Array.length arr then arr.(step) else 0

let random ~seed () =
  let rng = Rhodos_util.Rng.create seed in
  fun ~step:_ ~n_ready -> Rhodos_util.Rng.int rng n_ready
