open Effect
open Effect.Deep
module Prio_queue = Rhodos_util.Prio_queue

exception Killed

(* A parked process: its captured continuation plus the one-shot flag
   shared with every waker registered for it. *)
type parked = Parked : ('a, unit) continuation * bool ref -> parked

type proc_state = Ready | Parked_st of parked | Dead

(* Process-local bindings are heterogeneous: each [Local.key] carries
   its own constructor of this extensible type, so no [Obj] tricks are
   needed to store values of different types in one list. *)
type binding = ..

type proc = {
  id : int;
  name : string;
  mutable state : proc_state;
  mutable kill_pending : bool;
  mutable locals : binding list;
}

type pid = proc

(* Monitor events: a synchronous feed of every causality-relevant
   primitive operation, consumed by the race/protocol sanitizer
   ([Rhodos_analysis.Sanitizer]). Emission never schedules events and
   never blocks, so an attached monitor cannot perturb the run digest;
   with no monitor attached every hook is a single match on [None] —
   no allocation, no call. [proc = -1] means "outside any process"
   (top-level setup code or a bare timer thunk). Mailbox messages,
   ivars, semaphores and cells carry per-world sequence numbers so the
   consumer can pair a [M_recv] with the exact [M_send] that produced
   the message even when deliveries reorder under a controlled
   schedule. *)
type cell_role = Data | Sync

type mon_event =
  | M_spawn of { parent : int; child : int; name : string }
  | M_wake of { by : int; target : int }
      (** [by] resumed parked process [target]: a mailbox send reaching
          a waiter, a semaphore release, an ivar fill, a condition
          signal — every cross-process wakeup funnels through here. *)
  | M_send of { proc : int; mailbox : int; msg : int }
  | M_recv of { proc : int; mailbox : int; msg : int }
  | M_ivar_fill of { proc : int; ivar : int; double : bool }
  | M_ivar_read of { proc : int; ivar : int }
  | M_sem_acquire of { proc : int; sem : int }
  | M_sem_release of { proc : int; sem : int }
  | M_cell_created of { cell : int; name : string; role : cell_role }
  | M_cell_read of { proc : int; cell : int; role : cell_role }
  | M_cell_write of { proc : int; cell : int; role : cell_role }

(* Profiler hooks: like the monitor, a synchronous feed — but of the
   dispatch loop itself rather than of synchronisation primitives. The
   probe supplies its own host clock ([pr_clock], monotonic
   nanoseconds) so the simulator never reads host time directly (the
   host-clock-hygiene lint keeps host clocks confined to the profiler
   module); readings flow only into the probe's accumulators, never
   into simulated state, so an armed probe cannot perturb the run
   digest. With no probe installed each hook site is a single match on
   [None]. *)
type probe = {
  pr_clock : unit -> int;
      (** monotonic host nanoseconds, read at event creation and
          around each dispatched thunk *)
  pr_dispatch :
    proc:int ->
    name:string ->
    at:float ->
    queue_len:int ->
    queued_host_ns:int ->
    start_ns:int ->
    end_ns:int ->
    unit;
      (** called after a dispatched event's thunk returns: owning
          process ([-1]/"top" outside any process), dispatch sim time,
          event-queue length after the dispatch, the host stamp taken
          when the event was enqueued (0 = enqueued before arming) and
          the host stamps around the thunk *)
  pr_wake : target:int -> name:string -> unit;
      (** a parked process was resumed (same edge as [M_wake]) *)
}

(* [live] lets a cancelled timer (say, the sleep of a killed process)
   be skipped without advancing the clock to its deadline. [id] is the
   creation sequence number, folded into the run digest at dispatch so
   two runs produce the same digest iff they dispatched the same
   events in the same order at the same times. [origin] is the process
   the event belongs to (the one that scheduled it, or the one it will
   resume) — carried only so a recorded run can be pretty-printed as
   an interleaving; a proc pointer, not a string, so the hot path pays
   no formatting cost. The sentinel [t.top] proc (id -1) stands for
   "outside any process". [queued_host_ns] is the probe's enqueue
   stamp (0 when no probe is armed) — an immediate int field, so the
   event record allocates nothing extra on the probe-off path.

   Every field is mutable because dispatched events are recycled
   through a freelist ([t.pool]): at ~600k dispatches/sec the 6-word
   record per event was a measurable slice of the allocation rate, and
   a recycled record is hot in cache. An event is returned to the pool
   at the top of [dispatch] (after its fields are read into locals),
   so the thunk it carried can immediately reuse it for the events it
   schedules. *)
type event = {
  mutable id : int;
  mutable origin : proc;
  mutable live : unit -> bool;
  mutable thunk : unit -> unit;
  mutable queued_host_ns : int;
}

(* [clock] is a [float ref], not a [mutable float] field: in a mixed
   record the float field is boxed and every store would allocate,
   while a standalone float ref is flat and stores are plain writes. *)
type t = {
  clock : float ref;
  events : event Prio_queue.t;
  top : proc; (* sentinel: [current == top] means outside any process *)
  mutable failure : exn option;
  mutable next_pid : int;
  mutable current : proc;
  mutable next_event_id : int;
  mutable digest : int;
  mutable dispatched : int;
  track : bool;
  mutable procs : proc list; (* every spawn, only when [track] *)
  scheduler : (step:int -> n_ready:int -> int) option;
  record : bool;
  mutable n_choices : int;
  mutable choice_rev : (int * int) list; (* (n_ready, chosen), newest first *)
  mutable dispatch_rev : (float * string) list; (* only when [record] *)
  mutable monitor : (mon_event -> unit) option;
  mutable probe : probe option;
  mutable next_obj : int; (* mailbox/ivar/semaphore/cell id allocator *)
  mutable pool : event array; (* recycled event records *)
  mutable pool_n : int;
}

exception Blocking_outside_process

(* The registration callback receives the waker plus a liveness
   predicate ([false] once the process has been woken or killed), used
   to cancel pending timer events. [Block_simple] is the common case
   that needs no liveness predicate (mailbox receives, semaphore
   waits, yields): skipping the predicate and the adapter closure
   [suspend] would otherwise build keeps the park path allocation-lean. *)
type _ Effect.t +=
  | Block : (('a -> bool) -> (unit -> bool) -> unit) -> 'a Effect.t
  | Block_simple : (('a -> bool) -> unit) -> 'a Effect.t

let create ?(tie_break = Prio_queue.Fifo) ?(queue = Prio_queue.Wheel)
    ?(track = false) ?scheduler ?(record = false) () =
  let top =
    { id = -1; name = "top"; state = Ready; kill_pending = false; locals = [] }
  in
  { clock = ref 0.;
    events = Prio_queue.create ~tie:tie_break ~backend:queue (); top;
    failure = None; next_pid = 0; current = top; next_event_id = 0; digest = 0;
    dispatched = 0; track; procs = []; scheduler; record; n_choices = 0;
    choice_rev = []; dispatch_rev = []; monitor = None; probe = None;
    next_obj = 0; pool = [||]; pool_n = 0 }

let now t = !(t.clock)

let set_monitor t f = t.monitor <- f

let set_probe t p = t.probe <- p

let queue_length t = Prio_queue.length t.events

let[@inline] cur_id t = t.current.id

let obj_id t =
  let i = t.next_obj in
  t.next_obj <- i + 1;
  i

let always_live () = true

let nop () = ()

let proc_label (p : proc) =
  if p.id < 0 then "top" else Printf.sprintf "%s#%d" p.name p.id

(* Return a dispatched event record to the freelist for reuse. Fields
   are cleared so a pooled record pins neither closures nor procs. The
   pool is capped: a run that pops a long backlog without scheduling
   anything new (e.g. the drain at the end of a run) hands the excess
   to the GC instead of retaining it. *)
let recycle t ev =
  ev.origin <- t.top;
  ev.live <- always_live;
  ev.thunk <- nop;
  ev.queued_host_ns <- 0;
  let n = t.pool_n in
  let cap = Array.length t.pool in
  if n < cap then begin
    t.pool.(n) <- ev;
    t.pool_n <- n + 1
  end
  else if cap < 1024 then begin
    let pool = Array.make (if cap = 0 then 16 else 2 * cap) ev in
    Array.blit t.pool 0 pool 0 n;
    pool.(n) <- ev;
    t.pool <- pool;
    t.pool_n <- n + 1
  end

(* Raw scheduling path: [origin] is a plain argument, so the hot
   callers (wakers, spawns) don't box an optional. *)
let schedule_ev t origin ~at ~live thunk =
  let clock = !(t.clock) in
  let at = if at < clock then clock else at in
  let id = t.next_event_id in
  t.next_event_id <- id + 1;
  let queued_host_ns =
    match t.probe with None -> 0 | Some p -> p.pr_clock ()
  in
  let ev =
    let n = t.pool_n in
    if n > 0 then begin
      let n = n - 1 in
      t.pool_n <- n;
      let ev = t.pool.(n) in
      ev.id <- id;
      ev.origin <- origin;
      ev.live <- live;
      ev.thunk <- thunk;
      ev.queued_host_ns <- queued_host_ns;
      ev
    end
    else { id; origin; live; thunk; queued_host_ns }
  in
  Prio_queue.add t.events ~prio:at ev

let schedule_event ?origin t ~at ~live thunk =
  let origin = match origin with Some p -> p | None -> t.current in
  schedule_ev t origin ~at ~live thunk

let schedule t ~at thunk = schedule_event t ~at ~live:always_live thunk

let schedule_cancellable t ~at ~live thunk = schedule_event t ~at ~live thunk

let record_failure t e = if t.failure = None then t.failure <- Some e

(* The one-shot waker for a parked process: resuming schedules an
   event that reinstates the continuation. Top-level and partially
   applied per park, so both Block variants share one code path. *)
let make_waker :
    type a. t -> proc -> bool ref -> (a, unit) continuation -> a -> bool =
 fun t proc resumed k v ->
  if !resumed then false
  else begin
    resumed := true;
    proc.state <- Ready;
    (match t.monitor with
    | Some f -> f (M_wake { by = cur_id t; target = proc.id })
    | None -> ());
    (match t.probe with
    | Some p -> p.pr_wake ~target:proc.id ~name:proc.name
    | None -> ());
    schedule_ev t proc ~at:!(t.clock) ~live:always_live (fun () ->
        let saved = t.current in
        t.current <- proc;
        continue k v;
        t.current <- saved);
    true
  end

(* Run [f] as a process under the deep handler that implements
   suspension. The handler stays in force across resumptions, so every
   Block performed during the process's life lands here. *)
let run_process t proc f =
  match_with f ()
    {
      retc = (fun () -> proc.state <- Dead);
      exnc =
        (fun e ->
          proc.state <- Dead;
          match e with Killed -> () | e -> record_failure t e);
      effc =
        (fun (type b) (eff : b Effect.t) ->
          match eff with
          | Block register ->
            Some
              (fun (k : (b, unit) continuation) ->
                if proc.kill_pending then begin
                  proc.kill_pending <- false;
                  discontinue k Killed
                end
                else begin
                  let resumed = ref false in
                  proc.state <- Parked_st (Parked (k, resumed));
                  register (make_waker t proc resumed k)
                    (fun () -> not !resumed)
                end)
          | Block_simple register ->
            Some
              (fun (k : (b, unit) continuation) ->
                if proc.kill_pending then begin
                  proc.kill_pending <- false;
                  discontinue k Killed
                end
                else begin
                  let resumed = ref false in
                  proc.state <- Parked_st (Parked (k, resumed));
                  register (make_waker t proc resumed k)
                end)
          | _ -> None);
    }

let spawn_at ?(name = "proc") t ~at f =
  (* A child inherits the spawner's locals as they stand at the spawn
     call (not at first dispatch): ambient context such as a trace
     context must flow into work the current operation fans out. *)
  let inherited = t.current.locals in
  let proc =
    { id = t.next_pid; name; state = Ready; kill_pending = false;
      locals = inherited }
  in
  t.next_pid <- t.next_pid + 1;
  if t.track then t.procs <- proc :: t.procs;
  (match t.monitor with
  | Some f -> f (M_spawn { parent = cur_id t; child = proc.id; name })
  | None -> ());
  schedule_event ~origin:proc t ~at ~live:always_live (fun () ->
      if proc.state = Ready && not proc.kill_pending then begin
        let saved = t.current in
        t.current <- proc;
        run_process t proc f;
        t.current <- saved
      end
      else proc.state <- Dead);
  proc

let spawn ?name t f = spawn_at ?name t ~at:!(t.clock) f

(* --- run digest fold --------------------------------------------- *)
(* The digest folds (digest, ev.id, bits_of_float time) with exactly
   the value [Hashtbl.hash] would produce on that triple — but
   computed directly on the integer parts, because the obvious
   [Hashtbl.hash (t.digest, ev.id, Int64.bits_of_float time)] builds a
   4-word tuple and a 3-word [Int64] box per dispatch, the single
   largest allocation on the hot path. [Hashtbl.hash] is MurmurHash3:
   mix the tuple header, each immediate as its tagged machine word,
   the [Int64] as its custom hash (low xor high 32 bits), then
   finalize to 30 bits. The equivalence is pinned by a qcheck test
   against [Hashtbl.hash] itself ([digest_step] below), so a runtime
   that changed its hash would fail the suite rather than silently
   fork the digest stream. All arithmetic is on immediates masked to
   32 bits; nothing here allocates. *)

let hash_mask = 0xFFFFFFFF

let[@inline] mix_word h d =
  let d = d * 0xcc9e2d51 land hash_mask in
  let d = (d lsl 15) lor (d lsr 17) land hash_mask in
  let d = d * 0x1b873593 land hash_mask in
  let h = h lxor d in
  let h = (h lsl 13) lor (h lsr 19) land hash_mask in
  ((h * 5) + 0xe6546b64) land hash_mask

(* an immediate hashes as its tagged machine word [2k + 1], folded to
   32 bits as [caml_hash_mix_intnat] does *)
let[@inline] mix_immediate h k =
  let d = (2 * k) + 1 in
  mix_word h (((d asr 32) lxor (d asr 62) lxor d) land hash_mask)

let[@inline] final_mix h =
  let h = h lxor (h lsr 16) in
  let h = h * 0x85ebca6b land hash_mask in
  let h = h lxor (h lsr 13) in
  let h = h * 0xc2b2ae35 land hash_mask in
  let h = h lxor (h lsr 16) in
  h land 0x3FFFFFFF

let tuple3_header = 3 lsl 10 (* wosize 3, tag 0, colour bits clear *)

let digest_fold digest id lo hi =
  let h = mix_word 0 tuple3_header in
  let h = mix_immediate h digest in
  let h = mix_immediate h id in
  let h = mix_word h (lo lxor hi) in
  final_mix h

(* the fold exposed whole for the qcheck pin test *)
let digest_step digest id time =
  let bits = Int64.bits_of_float time in
  let lo = Int64.to_int bits land hash_mask in
  let hi = Int64.to_int (Int64.shift_right_logical bits 32) land hash_mask in
  digest_fold digest id lo hi

(* The event's fields are read into locals and the record recycled
   before the thunk runs, so the thunk's own [schedule_event] calls
   reuse it immediately — the common ping-pong shape cycles one or two
   records that stay hot in cache. *)
let dispatch t time ev =
  if time > !(t.clock) then t.clock := time;
  t.dispatched <- t.dispatched + 1;
  (let bits = Int64.bits_of_float time in
   let lo = Int64.to_int bits land hash_mask in
   let hi = Int64.to_int (Int64.shift_right_logical bits 32) land hash_mask in
   t.digest <- digest_fold t.digest ev.id lo hi);
  if t.record then
    t.dispatch_rev <- (time, proc_label ev.origin) :: t.dispatch_rev;
  (match t.probe with
  | None ->
    let thunk = ev.thunk in
    recycle t ev;
    thunk ()
  | Some p ->
    let thunk = ev.thunk in
    let origin = ev.origin in
    let queued_host_ns = ev.queued_host_ns in
    recycle t ev;
    let start_ns = p.pr_clock () in
    thunk ();
    let end_ns = p.pr_clock () in
    p.pr_dispatch ~proc:origin.id ~name:origin.name ~at:time
      ~queue_len:(Prio_queue.length t.events)
      ~queued_host_ns ~start_ns ~end_ns);
  match t.failure with
  | Some e ->
    t.failure <- None;
    raise e
  | None -> ()

(* Controlled mode: the ready set (all events at the minimum time,
   dead ones purged) is an explicit choice point. With one candidate
   the dispatch is forced; with several, the strategy picks the branch
   and the (n_ready, chosen) pair is recorded so the run can be
   replayed exactly. A FIFO strategy dispatches in exactly the order
   the uncontrolled loop would, so digests agree between the two. *)
let rec controlled_step t strategy =
  (* Fast path: [ready_count] is allocation-free and O(1) when the
     minimum is unique (the scheduler-armed-but-no-contention case),
     so a controlled run only pays the O(n) ready-set scan at genuine
     choice points. A forced single candidate records no choice,
     exactly like the group-of-one case below. *)
  match Prio_queue.ready_count t.events with
  | 0 -> false
  | 1 ->
    let time = Prio_queue.unsafe_min_prio t.events in
    let ev = Prio_queue.pop_into t.events in
    if ev.live () then begin
      dispatch t time ev;
      true
    end
    else begin
      (* the lone event at this time was dead; move on if later events
         remain *)
      recycle t ev;
      if Prio_queue.is_empty t.events then false else controlled_step t strategy
    end
  | _ ->
    let rec purge_dead () =
      let group = Prio_queue.ready t.events in
      let rec first_dead i = function
        | [] -> None
        | (_, ev) :: rest ->
          if ev.live () then first_dead (i + 1) rest else Some i
      in
      match first_dead 0 group with
      | Some i ->
        (match Prio_queue.pop_nth t.events i with
        | Some (_, ev) -> recycle t ev
        | None -> ());
        purge_dead ()
      | None -> group
    in
    (match purge_dead () with
    | [] ->
      if Prio_queue.is_empty t.events then false
      else controlled_step t strategy
    | [ _ ] ->
      (match Prio_queue.pop_nth t.events 0 with
      | Some (time, ev) -> dispatch t time ev
      | None -> assert false);
      true
    | group ->
      let n = List.length group in
      let chosen = strategy ~step:t.n_choices ~n_ready:n in
      let chosen =
        if chosen < 0 then 0 else if chosen >= n then n - 1 else chosen
      in
      t.n_choices <- t.n_choices + 1;
      t.choice_rev <- (n, chosen) :: t.choice_rev;
      (match Prio_queue.pop_nth t.events chosen with
      | Some (time, ev) -> dispatch t time ev
      | None -> assert false);
      true)

let step t =
  match t.scheduler with
  | Some strategy -> controlled_step t strategy
  | None ->
    if Prio_queue.is_empty t.events then false
    else begin
      let time = Prio_queue.unsafe_min_prio t.events in
      let ev = Prio_queue.pop_into t.events in
      if ev.live () then dispatch t time ev else recycle t ev;
      true
    end

let run ?until t =
  (match t.scheduler with
  | Some strategy ->
    let should_continue () =
      (not (Prio_queue.is_empty t.events))
      &&
      match until with
      | None -> true
      | Some u -> Prio_queue.unsafe_min_prio t.events <= u
    in
    while should_continue () do
      ignore (controlled_step t strategy)
    done
  | None -> (
    (* Uncontrolled hot loop: nothing here allocates — emptiness check,
       raw min read, raw pop, dispatch. *)
    let events = t.events in
    match until with
    | None ->
      while not (Prio_queue.is_empty events) do
        let time = Prio_queue.unsafe_min_prio events in
        let ev = Prio_queue.pop_into events in
        if ev.live () then dispatch t time ev else recycle t ev
      done
    | Some u ->
      while
        (not (Prio_queue.is_empty events))
        && Prio_queue.unsafe_min_prio events <= u
      do
        let time = Prio_queue.unsafe_min_prio events in
        let ev = Prio_queue.pop_into events in
        if ev.live () then dispatch t time ev else recycle t ev
      done));
  match until with Some u -> if u > !(t.clock) then t.clock := u | None -> ()

(* Sanitizer check: performing Block outside a process would surface
   as a cryptic [Effect.Unhandled]; fail with a diagnosable error
   instead. *)
let check_in_process t =
  if t.current == t.top then raise Blocking_outside_process

let suspend t register =
  check_in_process t;
  perform (Block_simple register)

let suspend_full t register =
  check_in_process t;
  perform (Block register)

let sleep t d =
  suspend_full t (fun waker live ->
      schedule_event t ~at:(!(t.clock) +. d) ~live (fun () ->
          ignore (waker ())))

let yield t =
  suspend t (fun waker ->
      schedule t ~at:!(t.clock) (fun () -> ignore (waker ())))

let kill t proc =
  match proc.state with
  | Dead -> ()
  | Parked_st (Parked (k, resumed)) ->
    if not !resumed then begin
      resumed := true;
      proc.state <- Dead;
      schedule t ~at:!(t.clock) (fun () -> discontinue k Killed)
    end
  | Ready ->
    if t.current == proc then raise Killed else proc.kill_pending <- true

let is_alive _t proc = proc.state <> Dead

let in_process t = t.current != t.top

let pid_name _t proc = Printf.sprintf "%s#%d" proc.name proc.id

let current_proc_id = cur_id

module Local = struct
  (* A key's identity is the private extensible-variant constructor
     minted by [key ()] — the projection function recognises exactly
     its own bindings, so no global counter is needed. *)
  type 'a key = {
    inj : 'a -> binding;
    prj : binding -> 'a option;
  }

  let key (type a) () : a key =
    let module M = struct
      type binding += K of a
    end in
    {
      inj = (fun v -> M.K v);
      prj = (function M.K v -> Some v | _ -> None);
    }

  let get t k =
    let p = t.current in
    if p == t.top then None else List.find_map k.prj p.locals

  let set t k v =
    let p = t.current in
    if p != t.top then begin
      let rest = List.filter (fun b -> Option.is_none (k.prj b)) p.locals in
      p.locals <- (match v with None -> rest | Some v -> k.inj v :: rest)
    end
end

(* ------------------------------------------------------------------ *)
(* Determinism sanitizer hooks                                         *)
(* ------------------------------------------------------------------ *)

let run_digest t = t.digest

let events_dispatched t = t.dispatched

let choices t = List.rev t.choice_rev

let dispatch_log t = List.rev t.dispatch_rev

type audit = { parked : string list; undelivered_kills : string list }

let audit t =
  let name p = Printf.sprintf "%s#%d" p.name p.id in
  let parked =
    List.filter_map
      (fun p -> match p.state with Parked_st _ -> Some (name p) | _ -> None)
      t.procs
  in
  let undelivered_kills =
    List.filter_map
      (fun p ->
        if p.kill_pending && p.state <> Dead then Some (name p) else None)
      t.procs
  in
  { parked = List.rev parked; undelivered_kills = List.rev undelivered_kills }

module Mailbox = struct
  (* Messages travel as [(msg, v)] pairs where [msg] is a per-mailbox
     sequence number, so the monitor can pair each receive with the
     exact send that produced it even when a controlled schedule
     reorders deliveries. The pairs never escape this module. *)
  type 'a mb = {
    sim : t;
    mbid : int;
    queue : (int * 'a) Queue.t;
    mutable next_msg : int;
    mutable waiters : ((int * 'a) -> bool) list; (* reversed arrival order *)
  }

  let create sim =
    { sim; mbid = obj_id sim; queue = Queue.create (); next_msg = 0;
      waiters = [] }

  (* Top-level delivery loop (a local [let rec] would allocate a
     closure per send); the [(msg, v)] pair is built once. *)
  let rec deliver mb p = function
    | [] ->
      mb.waiters <- [];
      Queue.push p mb.queue
    | w :: rest -> if w p then mb.waiters <- rest else deliver mb p rest

  let send mb v =
    let msg = mb.next_msg in
    mb.next_msg <- msg + 1;
    (match mb.sim.monitor with
    | Some f -> f (M_send { proc = cur_id mb.sim; mailbox = mb.mbid; msg })
    | None -> ());
    deliver mb (msg, v) mb.waiters

  (* Runs in the receiving process (fast path or just-resumed), so
     [cur_id] attributes the receive correctly. *)
  let got mb (msg, v) =
    (match mb.sim.monitor with
    | Some f -> f (M_recv { proc = cur_id mb.sim; mailbox = mb.mbid; msg })
    | None -> ());
    v

  let try_recv mb =
    match Queue.take_opt mb.queue with
    | Some p -> Some (got mb p)
    | None -> None

  let recv mb =
    match Queue.take_opt mb.queue with
    | Some p -> got mb p
    | None ->
      got mb
        (suspend mb.sim (fun waker -> mb.waiters <- mb.waiters @ [ waker ]))

  let recv_timeout mb d =
    match Queue.take_opt mb.queue with
    | Some p -> Some (got mb p)
    | None -> (
      match
        suspend_full mb.sim (fun waker live ->
            let deliver p = waker (Some p) in
            mb.waiters <- mb.waiters @ [ deliver ];
            schedule_event mb.sim ~at:(!(mb.sim.clock) +. d) ~live (fun () ->
                ignore (waker None)))
      with
      | Some p -> Some (got mb p)
      | None -> None)

  let length mb = Queue.length mb.queue
end

module Semaphore = struct
  type sem = {
    sim : t;
    sid : int;
    mutable count : int;
    mutable waiters : (unit -> bool) list;
  }

  let create sim count =
    if count < 0 then invalid_arg "Semaphore.create";
    { sim; sid = obj_id sim; count; waiters = [] }

  let acquired s =
    match s.sim.monitor with
    | Some f -> f (M_sem_acquire { proc = cur_id s.sim; sem = s.sid })
    | None -> ()

  let acquire s =
    if s.count > 0 then begin
      s.count <- s.count - 1;
      acquired s
    end
    else begin
      suspend s.sim (fun waker -> s.waiters <- s.waiters @ [ waker ]);
      acquired s
    end

  let try_acquire s =
    if s.count > 0 then begin
      s.count <- s.count - 1;
      acquired s;
      true
    end
    else false

  let rec wake_one s = function
    | [] ->
      s.waiters <- [];
      s.count <- s.count + 1
    | w :: rest -> if w () then s.waiters <- rest else wake_one s rest

  let release s =
    (match s.sim.monitor with
    | Some f -> f (M_sem_release { proc = cur_id s.sim; sem = s.sid })
    | None -> ());
    wake_one s s.waiters

  let available s = s.count

  let with_acquire s f =
    acquire s;
    Fun.protect ~finally:(fun () -> release s) f
end

module Condition = struct
  type cond = { sim : t; mutable waiters : (bool -> bool) list }

  let create sim = { sim; waiters = [] }

  let wait c =
    let signalled =
      suspend c.sim (fun waker -> c.waiters <- c.waiters @ [ waker ])
    in
    ignore (signalled : bool)

  let wait_timeout c d =
    suspend_full c.sim (fun waker live ->
        c.waiters <- c.waiters @ [ waker ];
        schedule_event c.sim ~at:(!(c.sim.clock) +. d) ~live (fun () ->
            ignore (waker false)))

  let rec wake_one c = function
    | [] -> c.waiters <- []
    | w :: rest -> if w true then c.waiters <- rest else wake_one c rest

  let signal c = wake_one c c.waiters

  let broadcast c =
    let ws = c.waiters in
    c.waiters <- [];
    List.iter (fun w -> ignore (w true)) ws

  let waiters c =
    (* Timed-out entries linger until skimmed; count only live ones is
       not observable, so report the raw queue length. *)
    List.length c.waiters
end

module Ivar = struct
  type 'a ivar = {
    sim : t;
    ivid : int;
    mutable value : 'a option;
    mutable waiters : ('a -> bool) list;
  }

  let create sim = { sim; ivid = obj_id sim; value = None; waiters = [] }

  let peek iv = iv.value

  let is_filled iv = match iv.value with Some _ -> true | None -> false

  let fill iv v =
    let double = is_filled iv in
    (match iv.sim.monitor with
    | Some f ->
      f (M_ivar_fill { proc = cur_id iv.sim; ivar = iv.ivid; double })
    | None -> ());
    match iv.value with
    | Some _ -> invalid_arg "Sim.Ivar.fill: already filled"
    | None ->
      iv.value <- Some v;
      let ws = iv.waiters in
      iv.waiters <- [];
      List.iter (fun w -> ignore (w v)) ws

  let read iv =
    let v =
      match iv.value with
      | Some v -> v
      | None ->
        suspend iv.sim (fun waker -> iv.waiters <- iv.waiters @ [ waker ])
    in
    (match iv.sim.monitor with
    | Some f -> f (M_ivar_read { proc = cur_id iv.sim; ivar = iv.ivid })
    | None -> ());
    v
end

(* Instrumented shared state: the unit of cross-process mutable state
   the sanitizer can see. A cell is just a mutable box whose reads and
   writes emit monitor events; with no monitor attached each access is
   one match on [None]. [Data] cells promise "every pair of accesses is
   ordered by happens-before or guarded by a common lock" and are
   race-checked pairwise; [Sync] cells are coordination state that is
   lock-free by design in a cooperative simulator (lock tables, request
   dedup maps, cache pools) — their accesses are counted but exempt
   from pairwise reports, with protocol monitors covering them
   instead. *)
module Cell = struct
  type 'a cell = {
    sim : t;
    cid : int;
    cname : string;
    crole : cell_role;
    mutable v : 'a;
  }

  let create ?(role = Data) ?name sim v =
    let cid = obj_id sim in
    let cname =
      match name with Some n -> n | None -> Printf.sprintf "cell#%d" cid
    in
    (match sim.monitor with
    | Some f -> f (M_cell_created { cell = cid; name = cname; role })
    | None -> ());
    { sim; cid; cname; crole = role; v }

  let name c = c.cname

  let get c =
    (match c.sim.monitor with
    | Some f ->
      f (M_cell_read { proc = cur_id c.sim; cell = c.cid; role = c.crole })
    | None -> ());
    c.v

  let peek c = c.v

  let set c v =
    (match c.sim.monitor with
    | Some f ->
      f (M_cell_write { proc = cur_id c.sim; cell = c.cid; role = c.crole })
    | None -> ());
    c.v <- v

  let update c f =
    (match c.sim.monitor with
    | Some g ->
      g (M_cell_read { proc = cur_id c.sim; cell = c.cid; role = c.crole });
      g (M_cell_write { proc = cur_id c.sim; cell = c.cid; role = c.crole })
    | None -> ());
    c.v <- f c.v
end
