open Effect
open Effect.Deep
module Prio_queue = Rhodos_util.Prio_queue

exception Killed

(* A parked process: its captured continuation plus the one-shot flag
   shared with every waker registered for it. *)
type parked = Parked : ('a, unit) continuation * bool ref -> parked

type proc_state = Ready | Parked_st of parked | Dead

(* Process-local bindings are heterogeneous: each [Local.key] carries
   its own constructor of this extensible type, so no [Obj] tricks are
   needed to store values of different types in one list. *)
type binding = ..

type proc = {
  id : int;
  name : string;
  mutable state : proc_state;
  mutable kill_pending : bool;
  mutable locals : (int * binding) list;
}

type pid = proc

(* Monitor events: a synchronous feed of every causality-relevant
   primitive operation, consumed by the race/protocol sanitizer
   ([Rhodos_analysis.Sanitizer]). Emission never schedules events and
   never blocks, so an attached monitor cannot perturb the run digest;
   with no monitor attached every hook is a single match on [None] —
   no allocation, no call. [proc = -1] means "outside any process"
   (top-level setup code or a bare timer thunk). Mailbox messages,
   ivars, semaphores and cells carry per-world sequence numbers so the
   consumer can pair a [M_recv] with the exact [M_send] that produced
   the message even when deliveries reorder under a controlled
   schedule. *)
type cell_role = Data | Sync

type mon_event =
  | M_spawn of { parent : int; child : int; name : string }
  | M_wake of { by : int; target : int }
      (** [by] resumed parked process [target]: a mailbox send reaching
          a waiter, a semaphore release, an ivar fill, a condition
          signal — every cross-process wakeup funnels through here. *)
  | M_send of { proc : int; mailbox : int; msg : int }
  | M_recv of { proc : int; mailbox : int; msg : int }
  | M_ivar_fill of { proc : int; ivar : int; double : bool }
  | M_ivar_read of { proc : int; ivar : int }
  | M_sem_acquire of { proc : int; sem : int }
  | M_sem_release of { proc : int; sem : int }
  | M_cell_created of { cell : int; name : string; role : cell_role }
  | M_cell_read of { proc : int; cell : int; role : cell_role }
  | M_cell_write of { proc : int; cell : int; role : cell_role }

(* Profiler hooks: like the monitor, a synchronous feed — but of the
   dispatch loop itself rather than of synchronisation primitives. The
   probe supplies its own host clock ([pr_clock], monotonic
   nanoseconds) so the simulator never reads host time directly (the
   host-clock-hygiene lint keeps host clocks confined to the profiler
   module); readings flow only into the probe's accumulators, never
   into simulated state, so an armed probe cannot perturb the run
   digest. With no probe installed each hook site is a single match on
   [None]. *)
type probe = {
  pr_clock : unit -> int;
      (** monotonic host nanoseconds, read at event creation and
          around each dispatched thunk *)
  pr_dispatch :
    proc:int ->
    name:string ->
    at:float ->
    queue_len:int ->
    queued_host_ns:int ->
    start_ns:int ->
    end_ns:int ->
    unit;
      (** called after a dispatched event's thunk returns: owning
          process ([-1]/"top" outside any process), dispatch sim time,
          event-queue length after the dispatch, the host stamp taken
          when the event was enqueued (0 = enqueued before arming) and
          the host stamps around the thunk *)
  pr_wake : target:int -> name:string -> unit;
      (** a parked process was resumed (same edge as [M_wake]) *)
}

(* [live] lets a cancelled timer (say, the sleep of a killed process)
   be skipped without advancing the clock to its deadline. [id] is the
   creation sequence number, folded into the run digest at dispatch so
   two runs produce the same digest iff they dispatched the same
   events in the same order at the same times. [origin] is the process
   the event belongs to (the one that scheduled it, or the one it will
   resume) — carried only so a recorded run can be pretty-printed as
   an interleaving; a proc pointer, not a string, so the hot path pays
   no formatting cost. [queued_host_ns] is the probe's enqueue stamp
   (0 when no probe is armed) — an immediate int field, so the event
   record allocates nothing extra on the probe-off path. *)
type event = {
  id : int;
  origin : proc option;
  live : unit -> bool;
  thunk : unit -> unit;
  queued_host_ns : int;
}

type t = {
  mutable clock : float;
  events : event Prio_queue.t;
  mutable failure : exn option;
  mutable next_pid : int;
  mutable current : proc option;
  mutable next_event_id : int;
  mutable digest : int;
  mutable dispatched : int;
  track : bool;
  mutable procs : proc list; (* every spawn, only when [track] *)
  scheduler : (step:int -> n_ready:int -> int) option;
  record : bool;
  mutable n_choices : int;
  mutable choice_rev : (int * int) list; (* (n_ready, chosen), newest first *)
  mutable dispatch_rev : (float * string) list; (* only when [record] *)
  mutable monitor : (mon_event -> unit) option;
  mutable probe : probe option;
  mutable next_obj : int; (* mailbox/ivar/semaphore/cell id allocator *)
}

exception Blocking_outside_process

(* The registration callback receives the waker plus a liveness
   predicate ([false] once the process has been woken or killed), used
   to cancel pending timer events. *)
type _ Effect.t +=
  | Block : (('a -> bool) -> (unit -> bool) -> unit) -> 'a Effect.t

let create ?(tie_break = Prio_queue.Fifo) ?(track = false) ?scheduler
    ?(record = false) () =
  { clock = 0.; events = Prio_queue.create ~tie:tie_break (); failure = None;
    next_pid = 0; current = None; next_event_id = 0; digest = 0; dispatched = 0;
    track; procs = []; scheduler; record; n_choices = 0; choice_rev = [];
    dispatch_rev = []; monitor = None; probe = None; next_obj = 0 }

let now t = t.clock

let set_monitor t f = t.monitor <- f

let set_probe t p = t.probe <- p

let queue_length t = Prio_queue.length t.events

let cur_id t = match t.current with Some p -> p.id | None -> -1

let obj_id t =
  let i = t.next_obj in
  t.next_obj <- i + 1;
  i

let always_live () = true

let proc_label = function
  | Some p -> Printf.sprintf "%s#%d" p.name p.id
  | None -> "top"

let schedule_event ?origin t ~at ~live thunk =
  let at = if at < t.clock then t.clock else at in
  let id = t.next_event_id in
  t.next_event_id <- t.next_event_id + 1;
  let origin = match origin with Some _ as o -> o | None -> t.current in
  let queued_host_ns =
    match t.probe with None -> 0 | Some p -> p.pr_clock ()
  in
  Prio_queue.add t.events ~prio:at { id; origin; live; thunk; queued_host_ns }

let schedule t ~at thunk = schedule_event t ~at ~live:always_live thunk

let schedule_cancellable t ~at ~live thunk = schedule_event t ~at ~live thunk

let record_failure t e = if t.failure = None then t.failure <- Some e

(* Run [f] as a process under the deep handler that implements
   suspension. The handler stays in force across resumptions, so every
   Block performed during the process's life lands here. *)
let run_process t proc f =
  match_with f ()
    {
      retc = (fun () -> proc.state <- Dead);
      exnc =
        (fun e ->
          proc.state <- Dead;
          match e with Killed -> () | e -> record_failure t e);
      effc =
        (fun (type b) (eff : b Effect.t) ->
          match eff with
          | Block register ->
            Some
              (fun (k : (b, unit) continuation) ->
                if proc.kill_pending then begin
                  proc.kill_pending <- false;
                  discontinue k Killed
                end
                else begin
                  let resumed = ref false in
                  proc.state <- Parked_st (Parked (k, resumed));
                  let waker v =
                    if !resumed then false
                    else begin
                      resumed := true;
                      proc.state <- Ready;
                      (match t.monitor with
                      | Some f -> f (M_wake { by = cur_id t; target = proc.id })
                      | None -> ());
                      (match t.probe with
                      | Some p -> p.pr_wake ~target:proc.id ~name:proc.name
                      | None -> ());
                      schedule_event ~origin:proc t ~at:t.clock
                        ~live:always_live (fun () ->
                          let saved = t.current in
                          t.current <- Some proc;
                          continue k v;
                          t.current <- saved);
                      true
                    end
                  in
                  register waker (fun () -> not !resumed)
                end)
          | _ -> None);
    }

let spawn_at ?(name = "proc") t ~at f =
  (* A child inherits the spawner's locals as they stand at the spawn
     call (not at first dispatch): ambient context such as a trace
     context must flow into work the current operation fans out. *)
  let inherited =
    match t.current with Some p -> p.locals | None -> []
  in
  let proc =
    { id = t.next_pid; name; state = Ready; kill_pending = false;
      locals = inherited }
  in
  t.next_pid <- t.next_pid + 1;
  if t.track then t.procs <- proc :: t.procs;
  (match t.monitor with
  | Some f -> f (M_spawn { parent = cur_id t; child = proc.id; name })
  | None -> ());
  schedule_event ~origin:proc t ~at ~live:always_live (fun () ->
      if proc.state = Ready && not proc.kill_pending then begin
        let saved = t.current in
        t.current <- Some proc;
        run_process t proc f;
        t.current <- saved
      end
      else proc.state <- Dead);
  proc

let spawn ?name t f = spawn_at ?name t ~at:t.clock f

let dispatch t time ev =
  if time > t.clock then t.clock <- time;
  t.dispatched <- t.dispatched + 1;
  t.digest <- Hashtbl.hash (t.digest, ev.id, Int64.bits_of_float time);
  if t.record then t.dispatch_rev <- (time, proc_label ev.origin) :: t.dispatch_rev;
  (match t.probe with
  | None -> ev.thunk ()
  | Some p ->
    let start_ns = p.pr_clock () in
    ev.thunk ();
    let end_ns = p.pr_clock () in
    let proc, name =
      match ev.origin with Some pr -> (pr.id, pr.name) | None -> (-1, "top")
    in
    p.pr_dispatch ~proc ~name ~at:time
      ~queue_len:(Prio_queue.length t.events)
      ~queued_host_ns:ev.queued_host_ns ~start_ns ~end_ns);
  match t.failure with
  | Some e ->
    t.failure <- None;
    raise e
  | None -> ()

(* Controlled mode: the ready set (all events at the minimum time,
   dead ones purged) is an explicit choice point. With one candidate
   the dispatch is forced; with several, the strategy picks the branch
   and the (n_ready, chosen) pair is recorded so the run can be
   replayed exactly. A FIFO strategy dispatches in exactly the order
   the uncontrolled loop would, so digests agree between the two. *)
let rec controlled_step t strategy =
  let rec purge_dead () =
    let group = Prio_queue.ready t.events in
    let rec first_dead i = function
      | [] -> None
      | (_, ev) :: rest -> if ev.live () then first_dead (i + 1) rest else Some i
    in
    match first_dead 0 group with
    | Some i ->
      ignore (Prio_queue.pop_nth t.events i);
      purge_dead ()
    | None -> group
  in
  match purge_dead () with
  | [] ->
    (* Everything at this time was dead; move on if later events remain. *)
    if Prio_queue.is_empty t.events then false else controlled_step t strategy
  | [ _ ] ->
    (match Prio_queue.pop_nth t.events 0 with
    | Some (time, ev) -> dispatch t time ev
    | None -> assert false);
    true
  | group ->
    let n = List.length group in
    let chosen = strategy ~step:t.n_choices ~n_ready:n in
    let chosen = if chosen < 0 then 0 else if chosen >= n then n - 1 else chosen in
    t.n_choices <- t.n_choices + 1;
    t.choice_rev <- (n, chosen) :: t.choice_rev;
    (match Prio_queue.pop_nth t.events chosen with
    | Some (time, ev) -> dispatch t time ev
    | None -> assert false);
    true

let step t =
  match t.scheduler with
  | Some strategy -> controlled_step t strategy
  | None -> (
    match Prio_queue.pop t.events with
    | None -> false
    | Some (time, ev) ->
      if ev.live () then dispatch t time ev;
      true)

let run ?until t =
  let should_continue () =
    match (until, Prio_queue.peek t.events) with
    | _, None -> false
    | None, Some _ -> true
    | Some u, Some (next, _) -> next <= u
  in
  while should_continue () do
    ignore (step t)
  done;
  match until with Some u -> if u > t.clock then t.clock <- u | None -> ()

(* Sanitizer check: performing Block outside a process would surface
   as a cryptic [Effect.Unhandled]; fail with a diagnosable error
   instead. *)
let check_in_process t =
  if t.current = None then raise Blocking_outside_process

let suspend t register =
  check_in_process t;
  perform (Block (fun waker _live -> register waker))

let suspend_full t register =
  check_in_process t;
  perform (Block register)

let sleep t d =
  suspend_full t (fun waker live ->
      schedule_event t ~at:(t.clock +. d) ~live (fun () -> ignore (waker ())))

let yield t =
  suspend t (fun waker -> schedule t ~at:t.clock (fun () -> ignore (waker ())))

let kill t proc =
  match proc.state with
  | Dead -> ()
  | Parked_st (Parked (k, resumed)) ->
    if not !resumed then begin
      resumed := true;
      proc.state <- Dead;
      schedule t ~at:t.clock (fun () -> discontinue k Killed)
    end
  | Ready ->
    if t.current == Some proc then raise Killed else proc.kill_pending <- true

let is_alive _t proc = proc.state <> Dead

let in_process t = t.current <> None

let pid_name _t proc = Printf.sprintf "%s#%d" proc.name proc.id

let current_proc_id = cur_id

module Local = struct
  type 'a key = {
    kid : int;
    inj : 'a -> binding;
    prj : binding -> 'a option;
  }

  (* Key creation order is fixed by program structure, so this global
     counter does not threaten run-to-run determinism. *)
  let next_key = ref 0

  let key (type a) () : a key =
    let module M = struct
      type binding += K of a
    end in
    incr next_key;
    {
      kid = !next_key;
      inj = (fun v -> M.K v);
      prj = (function M.K v -> Some v | _ -> None);
    }

  let get t k =
    match t.current with
    | None -> None
    | Some p -> (
      match List.assoc_opt k.kid p.locals with
      | None -> None
      | Some b -> k.prj b)

  let set t k v =
    match t.current with
    | None -> ()
    | Some p ->
      let rest = List.filter (fun (id, _) -> id <> k.kid) p.locals in
      p.locals <-
        (match v with None -> rest | Some v -> (k.kid, k.inj v) :: rest)
end

(* ------------------------------------------------------------------ *)
(* Determinism sanitizer hooks                                         *)
(* ------------------------------------------------------------------ *)

let run_digest t = t.digest

let events_dispatched t = t.dispatched

let choices t = List.rev t.choice_rev

let dispatch_log t = List.rev t.dispatch_rev

type audit = { parked : string list; undelivered_kills : string list }

let audit t =
  let name p = Printf.sprintf "%s#%d" p.name p.id in
  let parked =
    List.filter_map
      (fun p -> match p.state with Parked_st _ -> Some (name p) | _ -> None)
      t.procs
  in
  let undelivered_kills =
    List.filter_map
      (fun p ->
        if p.kill_pending && p.state <> Dead then Some (name p) else None)
      t.procs
  in
  { parked = List.rev parked; undelivered_kills = List.rev undelivered_kills }

module Mailbox = struct
  (* Messages travel as [(msg, v)] pairs where [msg] is a per-mailbox
     sequence number, so the monitor can pair each receive with the
     exact send that produced it even when a controlled schedule
     reorders deliveries. The pairs never escape this module. *)
  type 'a mb = {
    sim : t;
    mbid : int;
    queue : (int * 'a) Queue.t;
    mutable next_msg : int;
    mutable waiters : ((int * 'a) -> bool) list; (* reversed arrival order *)
  }

  let create sim =
    { sim; mbid = obj_id sim; queue = Queue.create (); next_msg = 0;
      waiters = [] }

  let send mb v =
    let msg = mb.next_msg in
    mb.next_msg <- msg + 1;
    (match mb.sim.monitor with
    | Some f -> f (M_send { proc = cur_id mb.sim; mailbox = mb.mbid; msg })
    | None -> ());
    let rec deliver = function
      | [] ->
        mb.waiters <- [];
        Queue.push (msg, v) mb.queue
      | w :: rest -> if w (msg, v) then mb.waiters <- rest else deliver rest
    in
    deliver mb.waiters

  (* Runs in the receiving process (fast path or just-resumed), so
     [cur_id] attributes the receive correctly. *)
  let got mb (msg, v) =
    (match mb.sim.monitor with
    | Some f -> f (M_recv { proc = cur_id mb.sim; mailbox = mb.mbid; msg })
    | None -> ());
    v

  let try_recv mb =
    match Queue.take_opt mb.queue with
    | Some p -> Some (got mb p)
    | None -> None

  let recv mb =
    match Queue.take_opt mb.queue with
    | Some p -> got mb p
    | None ->
      got mb
        (suspend mb.sim (fun waker -> mb.waiters <- mb.waiters @ [ waker ]))

  let recv_timeout mb d =
    match Queue.take_opt mb.queue with
    | Some p -> Some (got mb p)
    | None -> (
      match
        suspend_full mb.sim (fun waker live ->
            let deliver p = waker (Some p) in
            mb.waiters <- mb.waiters @ [ deliver ];
            schedule_event mb.sim ~at:(mb.sim.clock +. d) ~live (fun () ->
                ignore (waker None)))
      with
      | Some p -> Some (got mb p)
      | None -> None)

  let length mb = Queue.length mb.queue
end

module Semaphore = struct
  type sem = {
    sim : t;
    sid : int;
    mutable count : int;
    mutable waiters : (unit -> bool) list;
  }

  let create sim count =
    if count < 0 then invalid_arg "Semaphore.create";
    { sim; sid = obj_id sim; count; waiters = [] }

  let acquired s =
    match s.sim.monitor with
    | Some f -> f (M_sem_acquire { proc = cur_id s.sim; sem = s.sid })
    | None -> ()

  let acquire s =
    if s.count > 0 then begin
      s.count <- s.count - 1;
      acquired s
    end
    else begin
      suspend s.sim (fun waker -> s.waiters <- s.waiters @ [ waker ]);
      acquired s
    end

  let try_acquire s =
    if s.count > 0 then begin
      s.count <- s.count - 1;
      acquired s;
      true
    end
    else false

  let release s =
    (match s.sim.monitor with
    | Some f -> f (M_sem_release { proc = cur_id s.sim; sem = s.sid })
    | None -> ());
    let rec wake = function
      | [] ->
        s.waiters <- [];
        s.count <- s.count + 1
      | w :: rest -> if w () then s.waiters <- rest else wake rest
    in
    wake s.waiters

  let available s = s.count
end

module Condition = struct
  type cond = { sim : t; mutable waiters : (bool -> bool) list }

  let create sim = { sim; waiters = [] }

  let wait c =
    let signalled =
      suspend c.sim (fun waker -> c.waiters <- c.waiters @ [ waker ])
    in
    ignore (signalled : bool)

  let wait_timeout c d =
    suspend_full c.sim (fun waker live ->
        c.waiters <- c.waiters @ [ waker ];
        schedule_event c.sim ~at:(c.sim.clock +. d) ~live (fun () ->
            ignore (waker false)))

  let signal c =
    let rec wake = function
      | [] -> c.waiters <- []
      | w :: rest ->
        if w true then c.waiters <- rest else wake rest
    in
    wake c.waiters

  let broadcast c =
    let ws = c.waiters in
    c.waiters <- [];
    List.iter (fun w -> ignore (w true)) ws

  let waiters c =
    (* Timed-out entries linger until skimmed; count only live ones is
       not observable, so report the raw queue length. *)
    List.length c.waiters
end

module Ivar = struct
  type 'a ivar = {
    sim : t;
    ivid : int;
    mutable value : 'a option;
    mutable waiters : ('a -> bool) list;
  }

  let create sim = { sim; ivid = obj_id sim; value = None; waiters = [] }

  let peek iv = iv.value

  let is_filled iv = match iv.value with Some _ -> true | None -> false

  let fill iv v =
    let double = is_filled iv in
    (match iv.sim.monitor with
    | Some f ->
      f (M_ivar_fill { proc = cur_id iv.sim; ivar = iv.ivid; double })
    | None -> ());
    match iv.value with
    | Some _ -> invalid_arg "Sim.Ivar.fill: already filled"
    | None ->
      iv.value <- Some v;
      let ws = iv.waiters in
      iv.waiters <- [];
      List.iter (fun w -> ignore (w v)) ws

  let read iv =
    let v =
      match iv.value with
      | Some v -> v
      | None ->
        suspend iv.sim (fun waker -> iv.waiters <- iv.waiters @ [ waker ])
    in
    (match iv.sim.monitor with
    | Some f -> f (M_ivar_read { proc = cur_id iv.sim; ivar = iv.ivid })
    | None -> ());
    v
end

(* Instrumented shared state: the unit of cross-process mutable state
   the sanitizer can see. A cell is just a mutable box whose reads and
   writes emit monitor events; with no monitor attached each access is
   one match on [None]. [Data] cells promise "every pair of accesses is
   ordered by happens-before or guarded by a common lock" and are
   race-checked pairwise; [Sync] cells are coordination state that is
   lock-free by design in a cooperative simulator (lock tables, request
   dedup maps, cache pools) — their accesses are counted but exempt
   from pairwise reports, with protocol monitors covering them
   instead. *)
module Cell = struct
  type 'a cell = {
    sim : t;
    cid : int;
    cname : string;
    crole : cell_role;
    mutable v : 'a;
  }

  let create ?(role = Data) ?name sim v =
    let cid = obj_id sim in
    let cname =
      match name with Some n -> n | None -> Printf.sprintf "cell#%d" cid
    in
    (match sim.monitor with
    | Some f -> f (M_cell_created { cell = cid; name = cname; role })
    | None -> ());
    { sim; cid; cname; crole = role; v }

  let name c = c.cname

  let get c =
    (match c.sim.monitor with
    | Some f ->
      f (M_cell_read { proc = cur_id c.sim; cell = c.cid; role = c.crole })
    | None -> ());
    c.v

  let peek c = c.v

  let set c v =
    (match c.sim.monitor with
    | Some f ->
      f (M_cell_write { proc = cur_id c.sim; cell = c.cid; role = c.crole })
    | None -> ());
    c.v <- v

  let update c f =
    (match c.sim.monitor with
    | Some g ->
      g (M_cell_read { proc = cur_id c.sim; cell = c.cid; role = c.crole });
      g (M_cell_write { proc = cur_id c.sim; cell = c.cid; role = c.crole })
    | None -> ());
    c.v <- f c.v
end
