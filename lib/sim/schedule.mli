(** Scheduling strategies for the controlled simulator.

    When a simulation is created with [Sim.create ~scheduler], every
    moment at which more than one event is ready at the same simulated
    time becomes an explicit {e choice point}: the strategy is asked
    which of the [n_ready] events (indexed in creation order, i.e. the
    order FIFO tie-breaking would use) to dispatch. The simulator
    records the chosen branch index per choice point, so any run can
    be replayed exactly by feeding the recorded choices back through
    {!of_list}.

    A schedule is therefore just an [int list]: the branch taken at
    each successive choice point. A schedule shorter than the run
    falls back to FIFO (index 0) once exhausted — the representation
    the analysis explorer's bounded search and counterexample
    minimization both rely on. *)

type strategy = step:int -> n_ready:int -> int
(** [strategy ~step ~n_ready] picks the event to dispatch at the
    [step]-th choice point (0-based, counting only points with
    [n_ready > 1]). The result is clamped to [0, n_ready - 1] by the
    simulator, so strategies need not bound-check. *)

val fifo : strategy
(** Always 0 — identical to the default uncontrolled FIFO order. *)

val lifo : strategy
(** Always the newest ready event — the determinism sanitizer's
    perturbed order, expressed as a strategy. *)

val of_list : int list -> strategy
(** Replay: the [step]-th element of the list, FIFO once the list is
    exhausted. Out-of-range elements are clamped by the simulator, so
    any [int list] is a valid schedule. *)

val random : seed:int -> unit -> strategy
(** A fresh seeded random walk (deterministic for a given seed). Each
    call returns an independent stateful strategy; do not share one
    across runs. *)
