(** Deterministic discrete-event simulator with lightweight blocking
    processes.

    Everything in the reproduction runs on simulated time: disk
    transfers, network hops, lock waits, transaction timeouts. A
    process is an ordinary OCaml function that may call the blocking
    operations below ([sleep], [Mailbox.recv], [Semaphore.acquire],
    ...); suspension is implemented with OCaml 5 effects, so service
    code reads in direct style.

    Time is a [float] in milliseconds. Runs are deterministic: events
    at equal times fire in schedule order. *)

type t
(** A simulation world: clock plus event queue. *)

type pid
(** Process identifier. *)

exception Killed
(** Raised inside a process that is killed (e.g. its node crashed). *)

exception Blocking_outside_process
(** Raised when a blocking operation ([sleep], [Mailbox.recv], ...) is
    called from outside a [spawn]ed process — e.g. straight from a
    [schedule] callback or from top level. Without this check the
    failure would surface as a cryptic [Effect.Unhandled]. *)

val create :
  ?tie_break:Rhodos_util.Prio_queue.tie ->
  ?queue:Rhodos_util.Prio_queue.backend ->
  ?track:bool ->
  ?scheduler:Schedule.strategy ->
  ?record:bool ->
  unit ->
  t
(** [tie_break] (default [Fifo]) orders same-time events; [Lifo] is
    the determinism sanitizer's perturbed mode — a correct program
    must compute the same observable results under either. [track]
    (default [false]) records every spawned process so {!audit} can
    report leaks at end of run.

    [queue] picks the event-queue backend (default [Wheel], a timing
    wheel tuned for the dense near-horizon event mass a simulation
    produces; [Heap] is the binary-heap fallback). The two backends
    dispatch in the identical order under either tie policy — run
    digests are byte-identical across backends, asserted by tests —
    so the knob only affects speed.

    [scheduler] switches the event loop into controlled mode: whenever
    more than one live event is ready at the same simulated time, the
    strategy picks which one fires (see {!Schedule}). Each such choice
    point is recorded and retrievable via {!choices}, making any run
    replayable with [Schedule.of_list]. A [Schedule.fifo] strategy
    dispatches in exactly the default order, so its digest matches an
    uncontrolled run. [record] (default [false]) additionally keeps a
    human-readable dispatch log ({!dispatch_log}) naming the process
    each dispatched event belongs to — used to pretty-print a
    counterexample schedule as an interleaving trace. *)

val now : t -> float
(** Current simulated time (ms). *)

val spawn : ?name:string -> t -> (unit -> unit) -> pid
(** Schedule a new process to start at the current time. An exception
    escaping the process (other than [Killed]) is recorded and
    re-raised by [run]. *)

val spawn_at : ?name:string -> t -> at:float -> (unit -> unit) -> pid

val run : ?until:float -> t -> unit
(** Execute events until the queue is empty or the clock passes
    [until]. Re-raises the first exception that escaped a process. *)

val step : t -> bool
(** Execute a single event; [false] if none remain. *)

val schedule : t -> at:float -> (unit -> unit) -> unit
(** Low-level: run a callback (not a blocking process) at time [at]. *)

val sleep : t -> float -> unit
(** Block the calling process for the given duration. *)

val yield : t -> unit
(** Reschedule the calling process at the current time, letting other
    ready processes run first. *)

val kill : t -> pid -> unit
(** Kill a process: if it is blocked it resumes by raising [Killed];
    if it is ready-to-run it raises [Killed] at its next blocking
    point. Killing a dead process is a no-op. *)

val is_alive : t -> pid -> bool

val in_process : t -> bool
(** [true] while executing inside a [spawn]ed process (as opposed to a
    bare [schedule] callback or top level). *)

val pid_name : t -> pid -> string

val current_proc_id : t -> int
(** Id of the process currently executing, [-1] outside any process —
    the same attribution the monitor events carry. Lets a monitor
    consumer attribute third-party event streams (e.g. lock-manager
    events) to the process that produced them. *)

(** {2 Process-local storage}

    A [Local.key] names one typed slot of per-process state. A child
    process inherits a snapshot of its spawner's locals at the [spawn]
    call, so ambient context (e.g. the trace context of the request
    that fanned out the work) follows causality across [spawn]. Reads
    and writes outside any process return [None] / are no-ops. *)
module Local : sig
  type 'a key

  val key : unit -> 'a key
  (** Create a fresh slot. Each key is independent; values set under
      one key are invisible to every other key. *)

  val get : t -> 'a key -> 'a option
  (** Value bound in the calling process, or [None] if unbound or if
      called outside any process. *)

  val set : t -> 'a key -> 'a option -> unit
  (** Bind ([Some]) or clear ([None]) the slot in the calling process.
      No-op outside a process. Does not affect already-spawned
      children. *)
end

(** {2 Monitor hooks}

    A monitor is a synchronous callback fed every causality-relevant
    primitive operation: spawns, cross-process wakeups, mailbox
    send/recv (with per-message sequence numbers so a receive pairs
    with the exact send that produced it under any schedule), ivar
    fill/read, semaphore acquire/release, and every {!Cell} access.
    The race/protocol sanitizer ([Rhodos_analysis.Sanitizer]) is the
    intended consumer. Emission never schedules events and never
    blocks, so attaching a monitor cannot change the {!run_digest};
    with no monitor attached each hook costs a single match on
    [None] — no allocation, no call. *)

type cell_role =
  | Data
      (** every access pair must be happens-before ordered or guarded
          by a common lock; race-checked pairwise by the sanitizer *)
  | Sync
      (** coordination state that is lock-free by design in the
          cooperative simulator (lock tables, dedup maps, cache
          pools); exempt from pairwise race reports — protocol
          monitors and end-state invariants cover it *)

type mon_event =
  | M_spawn of { parent : int; child : int; name : string }
  | M_wake of { by : int; target : int }
      (** process [by] resumed parked process [target]; [-1] = outside
          any process (e.g. a timer). Every cross-process wakeup —
          mailbox send reaching a waiter, semaphore release, ivar
          fill, condition signal — funnels through this one edge. *)
  | M_send of { proc : int; mailbox : int; msg : int }
  | M_recv of { proc : int; mailbox : int; msg : int }
  | M_ivar_fill of { proc : int; ivar : int; double : bool }
      (** [double] = the ivar was already filled; emitted just before
          [Ivar.fill] raises on the double fill *)
  | M_ivar_read of { proc : int; ivar : int }
  | M_sem_acquire of { proc : int; sem : int }
  | M_sem_release of { proc : int; sem : int }
  | M_cell_created of { cell : int; name : string; role : cell_role }
      (** emitted only for cells created while the monitor is
          attached; consumers fall back to ["cell#<id>"] otherwise *)
  | M_cell_read of { proc : int; cell : int; role : cell_role }
  | M_cell_write of { proc : int; cell : int; role : cell_role }

val set_monitor : t -> (mon_event -> unit) option -> unit
(** Install (or clear) the monitor. At most one monitor per world;
    install it before creating the objects it should know by name. *)

(** {2 Profiler hooks}

    A probe is the dispatch loop's self-instrumentation: armed by
    [Rhodos_obs.Profiler], it receives one callback per dispatched
    event carrying the owning process, dispatch sim time, event-queue
    length and host-time stamps (from the probe's own monotonic clock
    — the simulator never reads host time itself; the
    host-clock-hygiene lint confines host clocks to the profiler
    module). Host readings flow only into the probe's accumulators,
    never into simulated state or the event queue, so an armed probe
    is digest-neutral; with no probe installed each hook site is a
    single match on [None] and the per-event [queued_host_ns] stamp is
    the immediate [0] — no allocation, no clock read. *)

type probe = {
  pr_clock : unit -> int;
      (** monotonic host nanoseconds; called at event creation and
          around each dispatched thunk *)
  pr_dispatch :
    proc:int ->
    name:string ->
    at:float ->
    queue_len:int ->
    queued_host_ns:int ->
    start_ns:int ->
    end_ns:int ->
    unit;
      (** after each dispatched event's thunk returns: [proc]/[name]
          identify the owning process ([-1]/["top"] outside any),
          [at] is the dispatch sim time, [queue_len] the event-queue
          length after the dispatch, [queued_host_ns] the enqueue
          stamp (0 = enqueued before the probe was armed), and
          [start_ns]/[end_ns] bracket the thunk *)
  pr_wake : target:int -> name:string -> unit;
      (** a parked process was resumed — the same edge as [M_wake] *)
}

val set_probe : t -> probe option -> unit
(** Install (or clear) the probe. At most one probe per world. *)

val queue_length : t -> int
(** Current number of pending events (live or cancelled) in the
    queue. O(1). *)

(** {2 Determinism sanitizer hooks}

    Used by [Rhodos_analysis.Determinism]. *)

val run_digest : t -> int
(** Hash of the event trace so far: every dispatched event's creation
    sequence number and dispatch time, folded in dispatch order. Two
    runs of the same program yield the same digest iff they executed
    the same schedule — a digest mismatch between two identically
    configured runs means nondeterminism (wall-clock, [Random], ...)
    leaked into the simulation. *)

val events_dispatched : t -> int

val digest_step : int -> int -> float -> int
(** [digest_step digest id time] is the digest fold applied at each
    dispatch — an allocation-free reimplementation of
    [Hashtbl.hash (digest, id, Int64.bits_of_float time)]. Exposed
    only so the test suite can pin the equivalence with a qcheck
    comparison against [Hashtbl.hash] itself; no other caller should
    need it. *)

val choices : t -> (int * int) list
(** Choice points taken so far in a controlled run, oldest first:
    [(n_ready, chosen)] per point where the ready set held more than
    one live event. Empty when no [scheduler] was given. The [chosen]
    components form the schedule that [Schedule.of_list] replays. *)

val dispatch_log : t -> (float * string) list
(** Dispatch trace (time, owning process label), oldest first. Empty
    unless the world was created with [~record:true]. *)

type audit = {
  parked : string list;
      (** processes still blocked when the event queue drained:
          never-resumed waiters *)
  undelivered_kills : string list;
      (** processes killed while ready whose [Killed] was never
          delivered — the kill leaked *)
}

val audit : t -> audit
(** End-of-run leak report. Empty unless the world was created with
    [~track:true]. *)

(** First-class suspension, used to build new blocking primitives.
    [suspend t register] parks the calling process and hands
    [register] a waker; the first call of the waker resumes the
    process with the given value and returns [true]; later calls
    return [false] and do nothing. *)
val suspend : t -> (('a -> bool) -> unit) -> 'a

val suspend_full : t -> (('a -> bool) -> (unit -> bool) -> unit) -> 'a
(** Like [suspend] but [register] also receives a liveness predicate,
    [false] once the process has been woken or killed. Pass it to
    [schedule_cancellable] so a stale timer neither fires nor drags
    the clock forward. *)

val schedule_cancellable : t -> at:float -> live:(unit -> bool) -> (unit -> unit) -> unit
(** [schedule] with a liveness predicate checked at dispatch time. *)

module Mailbox : sig
  type 'a mb

  val create : t -> 'a mb

  val send : 'a mb -> 'a -> unit
  (** Never blocks; delivers to a waiting receiver or queues. *)

  val recv : 'a mb -> 'a
  (** Block until a message arrives. *)

  val recv_timeout : 'a mb -> float -> 'a option
  (** [None] if no message arrives within the duration. *)

  val try_recv : 'a mb -> 'a option

  val length : 'a mb -> int
end

module Semaphore : sig
  type sem

  val create : t -> int -> sem

  val acquire : sem -> unit

  val try_acquire : sem -> bool

  val release : sem -> unit

  val available : sem -> int

  val with_acquire : sem -> (unit -> 'a) -> 'a
  (** [acquire], run the closure, and always [release] — including
      when the closure raises ([Fun.protect]). The scoped form the
      exception-flow pass treats as leak-free by construction. *)
end

module Condition : sig
  type cond

  val create : t -> cond

  val wait : cond -> unit
  (** Block until [signal]/[broadcast]. No mutex is needed: the
      simulator is cooperative, so the test-and-wait is atomic. *)

  val wait_timeout : cond -> float -> bool
  (** [true] if signalled, [false] on timeout. *)

  val signal : cond -> unit
  (** Wake one waiter (FIFO). No-op if none. *)

  val broadcast : cond -> unit

  val waiters : cond -> int
end

(** A write-once cell ("incremental variable"): readers block until a
    single [fill] publishes the value to all of them at once. The
    file agent uses one per in-flight block fetch, so concurrent
    readers of the same block share a single remote fetch
    (single-flight dedup) instead of duplicating it. *)
module Ivar : sig
  type 'a ivar

  val create : t -> 'a ivar

  val fill : 'a ivar -> 'a -> unit
  (** Publish the value and wake every waiting reader (FIFO).
      @raise Invalid_argument if already filled. *)

  val read : 'a ivar -> 'a
  (** Return the value, blocking the calling process until [fill]. *)

  val peek : 'a ivar -> 'a option

  val is_filled : 'a ivar -> bool
end

(** Instrumented shared state: a mutable box whose reads and writes
    are monitor events, making cross-process mutable state observable
    to the sanitizer. Library code holding state that several
    processes touch (agent fetch bookkeeping, cache pools, lock
    tables) keeps it in cells instead of bare [ref]s/[Hashtbl]s — the
    [global-mutable-state] and [raw-shared-cell] lint rules enforce
    the discipline. With no monitor attached an access costs one
    match on [None]. *)
module Cell : sig
  type 'a cell

  val create : ?role:cell_role -> ?name:string -> t -> 'a -> 'a cell
  (** [role] defaults to [Data] (the checked discipline); pass
      [~role:Sync] for by-design lock-free coordination state. Create
      cells after {!set_monitor} so the sanitizer learns their
      names. *)

  val name : 'a cell -> string

  val get : 'a cell -> 'a
  (** Read the cell (emits [M_cell_read]). When the payload is itself
      mutable (a [Hashtbl]), mutate it through {!update}, not through
      the alias [get] returns — the [raw-shared-cell] lint flags the
      latter. *)

  val set : 'a cell -> 'a -> unit
  (** Replace the payload (emits [M_cell_write]). *)

  val update : 'a cell -> ('a -> 'a) -> unit
  (** Read-modify-write (emits [M_cell_read] then [M_cell_write]).
      For a mutable payload, [update c (fun h -> mutate h; h)] marks
      the in-place mutation as a write. *)

  val peek : 'a cell -> 'a
  (** Unmonitored read, for reporting/debug paths that must not
      register as accesses. *)
end
