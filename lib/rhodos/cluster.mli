(** The RHODOS distributed file facility, assembled (paper Fig. 1).

    A cluster is one simulated distributed system:

    - a {b server node} carrying the disks, their disk (block)
      services with stable-storage mirror pairs, the basic file
      service, the transaction service, the naming service and
      optionally a replication group;
    - any number of {b client nodes}, each with its device agent, file
      agent and (dynamic) transaction agent, talking to the server
      either by direct calls (co-located, [remote = false]) or through
      the simulated network's idempotent RPC ([remote = true]);
    - fault injection at every level: crash a client (volatile caches
      lost), crash the server (all service state lost; recover with
      [recover_server]), decay disk sectors, lose/duplicate messages.

    This is the layer examples and benchmarks program against. *)

type t

type client

type config = {
  nservers : int;
      (** file servers; files and transactions are placed round-robin,
          each object managed by exactly one server (the first of the
          paper's three location steps: "locate the file service which
          manages the file") *)
  ndisks : int;                     (** disks per server *)
  disk_capacity_bytes : int;
  with_stable : bool;               (** mirror pairs for every disk *)
  remote : bool;                    (** services behind RPC *)
  placement : Rhodos_file.File_service.placement;
  fs_data_policy : Rhodos_file.File_service.data_policy;
  client_cache_blocks : int;        (** 0 = no client caching (Bullet-style) *)
  client_flush_interval_ms : float;
  client_fetch_window : int;
      (** max concurrent fetch RPCs per file agent (pipelining) *)
  client_max_fetch_blocks : int;
      (** blocks coalesced into one range fetch; 1 = per-block convoy *)
  client_read_ahead_blocks : int;
      (** adaptive sequential read-ahead cap, in blocks; 0 = off *)
  lock_config : Rhodos_txn.Lock_manager.config;
  net_latency_ms : float;
  net_bandwidth_bytes_per_ms : float;
  seed : int;
}

val default_config : config
(** 1 disk x 32 MiB with stable mirrors, remote services, fill-first
    placement, write-through at the service, 64-block client cache
    (fetch window 4, 64-block coalescing, 16-block read-ahead cap),
    0.5 ms / 1000 B-per-ms LAN. *)

val create : ?config:config -> Rhodos_sim.Sim.t -> t

val run :
  ?config:config ->
  ?queue:Rhodos_util.Prio_queue.backend ->
  (Rhodos_sim.Sim.t -> t -> 'a) ->
  'a
(** Create a simulation and a cluster, run the function inside a
    simulated process, drive the simulation to completion and return
    the result. [queue] selects the event-queue backend exactly as in
    {!Rhodos_sim.Sim.create}; the run digest does not depend on it. *)

(** {1 Components (Fig. 1 layers)} *)

val sim : t -> Rhodos_sim.Sim.t
val net : t -> Rhodos_net.Net.t

val tracer : t -> Rhodos_obs.Trace.t
(** The cluster-wide span tracer. Every layer (agents, RPC, services,
    block services, disks) is wired to it; attach a subscriber — e.g.
    [Rhodos_obs.Trace.collect] — to record spans. With no subscriber
    tracing costs nothing and the simulation is bit-identical to an
    untraced run. *)

val metrics : t -> Rhodos_obs.Metrics.t
(** The unified metrics registry. Per-node sources for every disk,
    block service, file service, transaction service, lock manager,
    the network and each client's agent caches are pre-registered;
    [Rhodos_obs.Metrics.snapshot] flattens them all. *)

val server_count : t -> int

val server_node : t -> Rhodos_net.Net.node
(** Server 0 (also the naming server). *)

val server_node_of : t -> int -> Rhodos_net.Net.node
val naming : t -> Rhodos_naming.Name_service.t

val file_service : t -> Rhodos_file.File_service.t
(** Server 0's basic file service. *)

val file_service_of : t -> int -> Rhodos_file.File_service.t
val txn_service : t -> Rhodos_txn.Txn_service.t
val txn_service_of : t -> int -> Rhodos_txn.Txn_service.t

val block_services : t -> Rhodos_block.Block_service.t array
(** Server 0's disk services. *)

val disks : t -> Rhodos_disk.Disk.t array
(** Every disk of every server, server-major. *)

(** {1 Clients} *)

val add_client : t -> name:string -> client

val client_name : client -> string
val client_node : client -> Rhodos_net.Net.node
val env : client -> Rhodos_agent.Process_env.t
val file_agent : client -> Rhodos_agent.File_agent.t
val device_agent : client -> Rhodos_agent.Device_agent.t
val transaction_agent : client -> Rhodos_agent.Transaction_agent.t
val fs_conn : client -> Rhodos_agent.Service_conn.fs_conn
(** The raw connection (bypasses the agent cache) — what a
    Bullet-style uncached client uses. *)

(** {1 Convenience file API (through the client's agents)} *)

val mkdir : client -> string -> unit
val create_file : client -> string -> Rhodos_agent.File_agent.desc
val open_file : client -> string -> Rhodos_agent.File_agent.desc
val write : client -> Rhodos_agent.File_agent.desc -> bytes -> unit
val read : client -> Rhodos_agent.File_agent.desc -> int -> bytes
val pwrite : client -> Rhodos_agent.File_agent.desc -> off:int -> data:bytes -> unit
val pread : client -> Rhodos_agent.File_agent.desc -> off:int -> len:int -> bytes
val lseek :
  client -> Rhodos_agent.File_agent.desc -> [ `Set of int | `Cur of int | `End of int ] -> int
val close : client -> Rhodos_agent.File_agent.desc -> unit
val delete : client -> string -> unit

val with_transaction :
  client -> (Rhodos_agent.Transaction_agent.t -> Rhodos_agent.Transaction_agent.tdesc -> 'a) -> 'a
(** Run under a transaction: commits on return, aborts on
    exception. Re-raises [Txn_service.Aborted] to the caller. *)

(** {1 Fault injection and recovery} *)

val crash_client : t -> client -> int
(** Kill the client's processes and lose its agent caches; returns
    dirty blocks lost. The client object remains usable (reboot). *)

val crash_server : t -> int
(** Kill every server's processes, lose all service caches and
    volatile state. Returns dirty blocks lost. Call
    [recover_server]. *)

val recover_server : t -> Rhodos_txn.Txn_service.recovery_report
(** Re-attach the disks (stable-storage recovery, bitmap restore),
    rebuild the services, replay the intentions list, re-register the
    RPC ports. Existing clients keep working (their next calls reach
    the new ports). *)

val set_message_loss : t -> float -> unit
val set_message_duplication : t -> float -> unit

(** {1 Integrity} *)

val fsck : t -> Rhodos_file.Fsck.report
(** Cross-validate the allocation bitmaps against every file bound in
    the namespace (plus the namespace file and the intentions-list
    region): no leaks, no references into free space, no double
    allocations. Run it after crash/recovery sequences. *)
