module Sim = Rhodos_sim.Sim
module Net = Rhodos_net.Net
module Disk = Rhodos_disk.Disk
module Block = Rhodos_block.Block_service
module Ns = Rhodos_naming.Name_service
module Fit = Rhodos_file.Fit
module Fs = Rhodos_file.File_service
module Txn = Rhodos_txn.Txn_service
module Lm = Rhodos_txn.Lock_manager
module Conn = Rhodos_agent.Service_conn
module File_agent = Rhodos_agent.File_agent
module Device_agent = Rhodos_agent.Device_agent
module Transaction_agent = Rhodos_agent.Transaction_agent
module Process_env = Rhodos_agent.Process_env
module Trace = Rhodos_obs.Trace
module Metrics = Rhodos_obs.Metrics

module L = (val Logs.src_log (Rhodos_util.Logging.src "cluster") : Logs.LOG)

type config = {
  nservers : int;
  ndisks : int;                 (* per server *)
  disk_capacity_bytes : int;
  with_stable : bool;
  remote : bool;
  placement : Fs.placement;
  fs_data_policy : Fs.data_policy;
  client_cache_blocks : int;
  client_flush_interval_ms : float;
  client_fetch_window : int;
  client_max_fetch_blocks : int;
  client_read_ahead_blocks : int;
  lock_config : Lm.config;
  net_latency_ms : float;
  net_bandwidth_bytes_per_ms : float;
  seed : int;
}

let default_config =
  {
    nservers = 1;
    ndisks = 1;
    disk_capacity_bytes = 32 * 1024 * 1024;
    with_stable = true;
    remote = true;
    placement = Fs.Fill_first;
    fs_data_policy = Fs.Write_through;
    client_cache_blocks = 64;
    client_flush_interval_ms = 1000.;
    client_fetch_window = 4;
    client_max_fetch_blocks = 64;
    client_read_ahead_blocks = 16;
    lock_config = Lm.default_config;
    net_latency_ms = 0.5;
    net_bandwidth_bytes_per_ms = 1000.;
    seed = 1;
  }

(* ------------------------------------------------------------------ *)
(* Global identifiers                                                  *)
(* ------------------------------------------------------------------ *)

(* Files may live on any file server ("the design does not take into
   account the physical location of the ... file and disk [services]").
   A system name therefore carries its server: the high bits of the
   integer id. With one server the encoding is the identity, so local
   ids and global ids coincide. Transaction handles are tagged the
   same way. *)
let server_shift = 48
let local_mask = (1 lsl server_shift) - 1
let gid ~server local = (server lsl server_shift) lor local
let gid_server g = g lsr server_shift
let gid_local g = g land local_mask

(* ------------------------------------------------------------------ *)
(* RPC protocol                                                        *)
(* ------------------------------------------------------------------ *)

type remote_error =
  | E_file_not_found of int
  | E_file_busy of int
  | E_name_not_found of string
  | E_already_bound of string
  | E_unresolvable of string
  | E_txn_aborted of int * string
  | E_no_space
  | E_no_such_txn of int
  | E_io of string
  | E_other of string

exception Remote_failure of string

let to_remote_error = function
  | Fs.File_not_found id -> E_file_not_found id
  | Fs.File_busy id -> E_file_busy id
  | Ns.Name_not_found p -> E_name_not_found p
  | Ns.Already_bound p -> E_already_bound p
  | Ns.Unresolvable p | Ns.Not_a_directory p | Ns.Is_a_directory p -> E_unresolvable p
  | Txn.Aborted { txn; reason } -> E_txn_aborted (txn, reason)
  | Txn.No_such_transaction h -> E_no_such_txn h
  | Block.No_space _ -> E_no_space
  (* Storage-layer faults: the client cannot retry these into success,
     but it must be able to tell "the server's disk is sick" from an
     anonymous failure. *)
  | ( Disk.Disk_failed _ | Rhodos_stable.Stable_store.Unrecoverable_page _
    | Block.Not_formatted _ | Fit.Corrupt _ ) as e ->
    E_io (Printexc.to_string e)
  | e -> E_other (Printexc.to_string e)

let raise_remote = function
  | E_file_not_found id -> raise (Fs.File_not_found id)
  | E_file_busy id -> raise (Fs.File_busy id)
  | E_name_not_found p -> raise (Ns.Name_not_found p)
  | E_already_bound p -> raise (Ns.Already_bound p)
  | E_unresolvable p -> raise (Ns.Unresolvable p)
  | E_txn_aborted (txn, reason) -> raise (Txn.Aborted { txn; reason })
  | E_no_space -> raise (Block.No_space { wanted_fragments = 0; free_fragments = 0 })
  | E_no_such_txn h -> raise (Txn.No_such_transaction h)
  | E_io s -> raise (Remote_failure s)
  | E_other s -> raise (Remote_failure s)

type request =
  (* naming (always served by server 0) *)
  | R_resolve of (string * string) list
  | R_bind of string * int
  | R_unbind of string
  | R_mkdir of string
  (* basic file service (routed by the id's server bits) *)
  | R_create
  | R_open of int
  | R_close of int
  | R_delete of int
  | R_pread of int * int * int
  | R_pread_stream of int * int * int * (int * bytes) Net.endpoint
      (* (id, off, len, chunk sink): the server pushes block-sized
         (off, data) chunks to the sink as it reads them, so the wire
         transfer overlaps the remaining disk time; the response
         Ok_int counts the chunks sent (the end-of-stream marker). *)
  | R_pwrite of int * int * bytes
  | R_getattr of int
  | R_truncate of int * int
  (* transaction service (routed by the handle's server bits) *)
  | R_tbegin
  | R_tcreate of int * Fit.locking_level
  | R_topen of int * int
  | R_tclose of int * int
  | R_tdelete of int * int
  | R_tread of int * int * int * int * bool
  | R_twrite of int * int * int * bytes
  | R_tgetattr of int * int
  | R_tend of int
  | R_tabort of int

type response =
  | Ok_unit
  | Ok_int of int
  | Ok_bytes of bytes
  | Ok_attrs of Fit.t
  | Err of remote_error

(* ------------------------------------------------------------------ *)
(* Cluster state                                                       *)
(* ------------------------------------------------------------------ *)

type server = {
  s_index : int;
  s_node : Net.node;
  s_disks : Disk.t array;
  s_stable_disks : (Disk.t * Disk.t) array;
  mutable s_bss : Block.t array;
  mutable s_fs : Fs.t;
  mutable s_ts : Txn.t;
  s_log_region : int * int;
  mutable s_port : (request, response) Net.Rpc.port option;
  s_txn_handles : (int, Txn.txn) Hashtbl.t;
}

type client = {
  c_name : string;
  c_node : Net.node;
  c_env : Process_env.t;
  c_files : File_agent.t;
  c_devices : Device_agent.t;
  c_txn : Transaction_agent.t;
  c_fs_conn : Conn.fs_conn;
  c_tracer : Trace.t;
}

type t = {
  cfg : config;
  t_sim : Sim.t;
  t_net : Net.t;
  t_servers : server array;
  mutable t_ns : Ns.t;
  t_naming_file : Fs.file_id; (* on server 0 *)
  mutable t_rr : int;         (* round-robin cursor for creations *)
  mutable t_clients : client list;
  t_tracer : Trace.t;
  t_metrics : Metrics.t;
}

let sim t = t.t_sim
let net t = t.t_net
let tracer t = t.t_tracer
let metrics t = t.t_metrics
let server_count t = Array.length t.t_servers
let server_node t = t.t_servers.(0).s_node
let server_node_of t i = t.t_servers.(i).s_node
let naming t = t.t_ns
let file_service t = t.t_servers.(0).s_fs
let file_service_of t i = t.t_servers.(i).s_fs
let txn_service t = t.t_servers.(0).s_ts
let txn_service_of t i = t.t_servers.(i).s_ts
let block_services t = t.t_servers.(0).s_bss
let disks t = Array.concat (Array.to_list (Array.map (fun s -> s.s_disks) t.t_servers))

(* ------------------------------------------------------------------ *)
(* Namespace persistence                                               *)
(* ------------------------------------------------------------------ *)

(* Directories are "structural information of fairly small size": the
   whole namespace is serialised into a reserved file (on server 0) so
   that it survives a server crash like any other file. Paths must not
   contain newlines or spaces (a documented simplification). *)
let serialise_namespace ns =
  let buf = Buffer.create 256 in
  let rec walk path =
    List.iter
      (fun (name, kind) ->
        let p = (if path = "/" then "" else path) ^ "/" ^ name in
        match kind with
        | Ns.Directory ->
          Buffer.add_string buf (Printf.sprintf "D %s\n" p);
          walk p
        | Ns.File | Ns.Device ->
          let sysname = Ns.resolve_path ns p in
          let tag = if kind = Ns.File then "F" else "V" in
          Buffer.add_string buf
            (Printf.sprintf "%s %s %s %d\n" tag p sysname.Ns.service sysname.Ns.id))
      (Ns.list_dir ns path)
  in
  walk "/";
  Buffer.to_bytes buf

let deserialise_namespace data =
  let ns = Ns.create () in
  String.split_on_char '\n' (Bytes.to_string data)
  |> List.iter (fun line ->
         match String.split_on_char ' ' line with
         | [ "D"; path ] -> Ns.mkdir_p ns path
         | [ tag; path; service; id ] when tag = "F" || tag = "V" ->
           let kind = if tag = "F" then Ns.File else Ns.Device in
           Ns.bind ns ~path ~kind { Ns.service; id = int_of_string id }
         | _ -> ());
  ns

let persist_namespace t =
  let data = serialise_namespace t.t_ns in
  let fs0 = t.t_servers.(0).s_fs in
  Fs.truncate fs0 t.t_naming_file 0;
  if Bytes.length data > 0 then Fs.pwrite fs0 t.t_naming_file ~off:0 data

(* ------------------------------------------------------------------ *)
(* Server-side request handling                                        *)
(* ------------------------------------------------------------------ *)

(* Translate a global file id to this server's local id. Locating "the
   file service which manages the file" is the first of the paper's
   three steps; a misrouted id is a client bug. *)
let local_fid server g =
  if gid_server g <> server.s_index then
    failwith
      (Printf.sprintf "file %d belongs to server %d, not %d" g (gid_server g)
         server.s_index)
  else Fs.id_of_int (gid_local g)

let global_fid server id = gid ~server:server.s_index (Fs.id_to_int id)

let txn_of server handle =
  match Hashtbl.find_opt server.s_txn_handles (gid_local handle) with
  | Some txn -> txn
  | None -> raise (Txn.No_such_transaction handle)

(* Short op labels for the RPC trace spans. *)
let request_name = function
  | R_resolve _ -> "resolve"
  | R_bind _ -> "bind"
  | R_unbind _ -> "unbind"
  | R_mkdir _ -> "mkdir"
  | R_create -> "create"
  | R_open _ -> "open"
  | R_close _ -> "close"
  | R_delete _ -> "delete"
  | R_pread _ -> "pread"
  | R_pread_stream _ -> "pread_stream"
  | R_pwrite _ -> "pwrite"
  | R_getattr _ -> "getattr"
  | R_truncate _ -> "truncate"
  | R_tbegin -> "tbegin"
  | R_tcreate _ -> "tcreate"
  | R_topen _ -> "topen"
  | R_tclose _ -> "tclose"
  | R_tdelete _ -> "tdelete"
  | R_tread _ -> "tread"
  | R_twrite _ -> "twrite"
  | R_tgetattr _ -> "tgetattr"
  | R_tend _ -> "tend"
  | R_tabort _ -> "tabort"

let naming_span t op path f =
  Trace.maybe (Some t.t_tracer) ~service:"naming" ~op
    ~attrs:(fun () -> [ ("path", Trace.Str path) ])
    f

let handle_request t server request =
  try
    match request with
    | R_resolve aname ->
      naming_span t "resolve"
        (try List.assoc "path" aname with Not_found -> "?")
        (fun () -> Ok_int (Ns.resolve t.t_ns aname).Ns.id)
    | R_bind (path, id) ->
      naming_span t "bind" path (fun () ->
          Ns.bind t.t_ns ~path ~kind:Ns.File
            { Ns.service = Printf.sprintf "fs%d" (gid_server id); id };
          persist_namespace t;
          Ok_unit)
    | R_unbind path ->
      naming_span t "unbind" path (fun () ->
          Ns.unbind t.t_ns path;
          persist_namespace t;
          Ok_unit)
    | R_mkdir path ->
      naming_span t "mkdir" path (fun () ->
          Ns.mkdir_p t.t_ns path;
          persist_namespace t;
          Ok_unit)
    | R_create -> Ok_int (global_fid server (Fs.create_file server.s_fs))
    | R_open id ->
      let f = local_fid server id in
      Fs.open_file server.s_fs f;
      Ok_attrs (Fs.get_attributes server.s_fs f)
    | R_close id ->
      Fs.close_file server.s_fs (local_fid server id);
      Ok_unit
    | R_delete id ->
      Fs.delete server.s_fs (local_fid server id);
      Ok_unit
    | R_pread (id, off, len) ->
      Ok_bytes (Fs.pread server.s_fs (local_fid server id) ~off ~len)
    | R_pread_stream (id, off, len, sink) ->
      (* Read the range block by block, pushing each chunk onto the
         wire as soon as the file service hands it over: the next
         block's disk time overlaps the previous chunk's transfer. *)
      let f = local_fid server id in
      let chunk = File_agent.block_size in
      let stop = off + len in
      let n = ref 0 in
      let pos = ref off in
      while !pos < stop do
        let chunk_end = min stop ((((!pos / chunk) + 1) * chunk)) in
        let data = Fs.pread server.s_fs f ~off:!pos ~len:(chunk_end - !pos) in
        Net.send ~size_bytes:(64 + Bytes.length data) t.t_net
          ~from:server.s_node sink (!pos, data);
        incr n;
        (* A short read means EOF: nothing further to stream. *)
        if Bytes.length data < chunk_end - !pos then pos := stop
        else pos := chunk_end
      done;
      Ok_int !n
    | R_pwrite (id, off, data) ->
      Fs.pwrite server.s_fs (local_fid server id) ~off data;
      Ok_unit
    | R_getattr id -> Ok_attrs (Fs.get_attributes server.s_fs (local_fid server id))
    | R_truncate (id, size) ->
      Fs.truncate server.s_fs (local_fid server id) size;
      Ok_unit
    | R_tbegin ->
      let txn = Txn.tbegin server.s_ts in
      Hashtbl.replace server.s_txn_handles (Txn.txn_id txn) txn;
      Ok_int (gid ~server:server.s_index (Txn.txn_id txn))
    | R_tcreate (h, locking) ->
      Ok_int
        (global_fid server (Txn.tcreate ~locking_level:locking server.s_ts (txn_of server h)))
    | R_topen (h, id) ->
      Txn.topen server.s_ts (txn_of server h) (local_fid server id);
      Ok_unit
    | R_tclose (h, id) ->
      Txn.tclose server.s_ts (txn_of server h) (local_fid server id);
      Ok_unit
    | R_tdelete (h, id) ->
      Txn.tdelete server.s_ts (txn_of server h) (local_fid server id);
      Ok_unit
    | R_tread (h, id, off, len, update) ->
      let intent = if update then `Update else `Query in
      Ok_bytes (Txn.tread ~intent server.s_ts (txn_of server h) (local_fid server id) ~off ~len)
    | R_twrite (h, id, off, data) ->
      Txn.twrite server.s_ts (txn_of server h) (local_fid server id) ~off data;
      Ok_unit
    | R_tgetattr (h, id) ->
      Ok_attrs (Txn.tget_attribute server.s_ts (txn_of server h) (local_fid server id))
    | R_tend h ->
      let txn = txn_of server h in
      Hashtbl.remove server.s_txn_handles (gid_local h);
      Txn.tend server.s_ts txn;
      Ok_unit
    | R_tabort h ->
      let txn = txn_of server h in
      Hashtbl.remove server.s_txn_handles (gid_local h);
      Txn.tabort server.s_ts txn;
      Ok_unit
  with
  | Sim.Killed as k -> raise k
  | e -> Err (to_remote_error e)

let serve_rpc t server =
  server.s_port <-
    Some
      (Net.Rpc.serve
         ~name:(Printf.sprintf "rhodos-services-%d" server.s_index)
         t.t_net server.s_node
         (handle_request t server))

(* ------------------------------------------------------------------ *)
(* Client connections                                                  *)
(* ------------------------------------------------------------------ *)

let request_size = function
  | R_pwrite (_, _, data) | R_twrite (_, _, _, data) -> 128 + Bytes.length data
  | _ -> 128

let response_size = function
  | R_pread (_, _, len) | R_tread (_, _, _, len, _) -> 128 + len
  | _ -> 128

(* Step one of the paper's three-step location procedure: find the
   file service that manages the object of the request. *)
let route t request =
  let by_id id = gid_server id mod Array.length t.t_servers in
  match request with
  | R_resolve _ | R_bind _ | R_unbind _ | R_mkdir _ -> 0
  | R_create | R_tbegin ->
    (* New objects rotate across the file servers. *)
    let s = t.t_rr mod Array.length t.t_servers in
    t.t_rr <- t.t_rr + 1;
    s
  | R_open id | R_close id | R_delete id | R_pread (id, _, _)
  | R_pread_stream (id, _, _, _) | R_pwrite (id, _, _) | R_getattr id
  | R_truncate (id, _) ->
    by_id id
  | R_tcreate (h, _) | R_topen (h, _) | R_tclose (h, _) | R_tdelete (h, _)
  | R_tread (h, _, _, _, _) | R_twrite (h, _, _, _) | R_tgetattr (h, _)
  | R_tend h | R_tabort h ->
    by_id h

(* Dispatch a request either directly (co-located services) or via RPC
   from the client's node. *)
let call t ~from request =
  let server = t.t_servers.(route t request) in
  let response =
    if not t.cfg.remote then handle_request t server request
    else begin
      let port =
        match server.s_port with
        | Some port -> port
        | None -> failwith "rhodos: server not running"
      in
      let size_bytes = request_size request in
      let resp_size_bytes = response_size request in
      let payload =
        match request with
        (* The streamed range travels as one-way chunks, not in the
           response, but the call must still wait out the full
           transfer before declaring a timeout. *)
        | R_pread_stream (_, _, len, _) -> max (max size_bytes resp_size_bytes) len
        | _ -> max size_bytes resp_size_bytes
      in
      let timeout_ms =
        200. +. (4. *. float_of_int payload /. t.cfg.net_bandwidth_bytes_per_ms)
      in
      Net.Rpc.call ~timeout_ms ~max_retries:8 ~size_bytes ~resp_size_bytes
        ~op:("rpc:" ^ request_name request) t.t_net ~from port request
    end
  in
  match response with Err e -> raise_remote e | ok -> ok

let expect_unit = function Ok_unit -> () | _ -> failwith "rhodos: protocol mismatch"
let expect_int = function Ok_int i -> i | _ -> failwith "rhodos: protocol mismatch"
let expect_bytes = function Ok_bytes b -> b | _ -> failwith "rhodos: protocol mismatch"
let expect_attrs = function Ok_attrs a -> a | _ -> failwith "rhodos: protocol mismatch"

let make_fs_conn t ~from : Conn.fs_conn =
  {
    (* static-ok: leak-on-raise branch-union artifact: holds-on-return of handle_request is unioned over all request arms, but the naming arms these stubs invoke take no locks *)
    Conn.resolve = (fun aname -> expect_int (call t ~from (R_resolve aname)));
    bind = (fun ~path ~file_id -> expect_unit (call t ~from (R_bind (path, file_id))));
    unbind = (fun path -> expect_unit (call t ~from (R_unbind path)));
    mkdir = (fun path -> expect_unit (call t ~from (R_mkdir path)));
    create_file = (fun () -> expect_int (call t ~from R_create));
    open_file = (fun id -> expect_attrs (call t ~from (R_open id)));
    close_file = (fun id -> expect_unit (call t ~from (R_close id)));
    delete_file = (fun id -> expect_unit (call t ~from (R_delete id)));
    pread = (fun id ~off ~len -> expect_bytes (call t ~from (R_pread (id, off, len))));
    pread_stream =
      Some
        (fun id ~off ~len ~on_chunk ->
          if not t.cfg.remote then
            (* Co-located services: no wire to overlap with — deliver
               the whole range as a single chunk. *)
            on_chunk ~off (expect_bytes (call t ~from (R_pread (id, off, len))))
          else begin
            let sink = Net.endpoint t.t_net from in
            let expected =
              expect_int (call t ~from (R_pread_stream (id, off, len, sink)))
            in
            (* The response follows the last chunk, so normally every
               chunk is already buffered; the timeout only matters
               when chunks were lost (or on a response replayed by the
               server's dedup after a retry, where they may still be
               in flight). Deduplicate: sends can be duplicated too. *)
            let chunk = File_agent.block_size in
            let grace =
              4.
              *. (t.cfg.net_latency_ms
                 +. (float_of_int (chunk + 64) /. t.cfg.net_bandwidth_bytes_per_ms))
            in
            let seen = Hashtbl.create 8 in
            let missing = ref (max 0 expected) in
            let timed_out = ref false in
            while (not !timed_out) && !missing > 0 do
              (* static-ok: may-block-under-lock branch-union artifact: holds-on-return of handle_request is unioned over all request arms, but the R_pread_stream arm this stub just invoked takes no locks *)
              match Net.recv_timeout sink grace with
              | None -> timed_out := true
              | Some (coff, data) ->
                if not (Hashtbl.mem seen coff) then begin
                  Hashtbl.replace seen coff ();
                  decr missing;
                  on_chunk ~off:coff data
                end
            done
          end);
    pwrite =
      (fun id ~off ~data -> expect_unit (call t ~from (R_pwrite (id, off, data))));
    get_attributes = (fun id -> expect_attrs (call t ~from (R_getattr id)));
    truncate = (fun id ~size -> expect_unit (call t ~from (R_truncate (id, size))));
  }

let make_txn_conn t ~from : Conn.txn_conn =
  {
    (* static-ok: leak-on-raise branch-union artifact: holds-on-return of handle_request is unioned over all request arms; 2PL grants taken by the txn arms are released by tend/tabort, not by this stub *)
    Conn.tbegin = (fun () -> expect_int (call t ~from R_tbegin));
    tcreate = (fun ~locking h -> expect_int (call t ~from (R_tcreate (h, locking))));
    topen = (fun h id -> expect_unit (call t ~from (R_topen (h, id))));
    tclose = (fun h id -> expect_unit (call t ~from (R_tclose (h, id))));
    tdelete = (fun h id -> expect_unit (call t ~from (R_tdelete (h, id))));
    tread =
      (fun h id ~off ~len ~intent_update ->
        expect_bytes (call t ~from (R_tread (h, id, off, len, intent_update))));
    twrite =
      (fun h id ~off ~data -> expect_unit (call t ~from (R_twrite (h, id, off, data))));
    tget_attribute = (fun h id -> expect_attrs (call t ~from (R_tgetattr (h, id))));
    tend = (fun h -> expect_unit (call t ~from (R_tend h)));
    tabort = (fun h -> expect_unit (call t ~from (R_tabort h)));
  }

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let build_block_services ~cfg ~sidx ~tracer ~disks ~stable_disks =
  Array.mapi
    (fun i disk ->
      let stable = if cfg.with_stable then Some stable_disks.(i) else None in
      Block.create ~name:(Printf.sprintf "bs%d-%d" sidx i) ~tracer ~disk
        ?stable ())
    disks

let fs_config cfg =
  {
    Fs.default_config with
    Fs.placement = cfg.placement;
    data_policy = cfg.fs_data_policy;
  }

let build_server ~cfg ~sim ~net ~tracer sidx =
  let node =
    Net.add_node net (if sidx = 0 then "server" else Printf.sprintf "server%d" sidx)
  in
  let geometry = Disk.geometry_with_capacity cfg.disk_capacity_bytes in
  let disks =
    Array.init cfg.ndisks (fun i ->
        Disk.create ~name:(Printf.sprintf "d%d-%d" sidx i) ~tracer sim geometry)
  in
  let stable_geometry = Disk.geometry_with_capacity (cfg.disk_capacity_bytes * 2) in
  let stable_disks =
    if cfg.with_stable then
      Array.init cfg.ndisks (fun i ->
          ( Disk.create ~name:(Printf.sprintf "st%d-%da" sidx i) sim stable_geometry,
            Disk.create ~name:(Printf.sprintf "st%d-%db" sidx i) sim stable_geometry ))
    else [||]
  in
  let bss = build_block_services ~cfg ~sidx ~tracer ~disks ~stable_disks in
  Array.iter Block.format bss;
  let fs = Fs.create ~config:(fs_config cfg) ~tracer ~disks:bss () in
  (* The reserved namespace file must be the very first file created on
     server 0, so its id is deterministic across restarts. *)
  let naming_file = if sidx = 0 then Some (Fs.create_file fs) else None in
  let ts =
    Txn.create
      ~config:{ Txn.default_config with Txn.lock_config = cfg.lock_config }
      ~tracer ~fs ()
  in
  ( {
      s_index = sidx;
      s_node = node;
      s_disks = disks;
      s_stable_disks = stable_disks;
      s_bss = bss;
      s_fs = fs;
      s_ts = ts;
      s_log_region = Txn.log_region ts;
      s_port = None;
      (* Per-tid handle table: each transaction id is minted once and only
         its owning client's handler touches that key; keyed add/remove on
         distinct tids commute.
         static-ok: static-race keyed entries commute *)
      s_txn_handles = Hashtbl.create 16;
    },
    naming_file )

(* Adopt the per-service counter tables into the unified registry.
   Sources close over the mutable [server] record (not the service
   values), so they keep reading the live services after
   [recover_server] replaces them. *)
let disk_source d () =
  let s = Disk.stats d in
  [
    ("references", float_of_int s.Disk.references);
    ("reads", float_of_int s.Disk.reads);
    ("writes", float_of_int s.Disk.writes);
    ("sectors_read", float_of_int s.Disk.sectors_read);
    ("sectors_written", float_of_int s.Disk.sectors_written);
    ("seeks", float_of_int s.Disk.seeks);
    ("busy_ms", s.Disk.busy_ms);
  ]

let register_server_metrics metrics server =
  let node = Net.node_name server.s_node in
  Array.iter
    (fun d ->
      Metrics.register_source metrics ~node ~name:("disk." ^ Disk.name d)
        (disk_source d))
    server.s_disks;
  Array.iteri
    (fun i _ ->
      Metrics.register_source metrics ~node ~name:(Printf.sprintf "block.%d" i)
        (fun () -> Metrics.of_counter_table (Block.stats server.s_bss.(i)) ()))
    server.s_bss;
  Metrics.register_source metrics ~node ~name:"fs" (fun () ->
      Metrics.of_counter_table (Fs.stats server.s_fs) ());
  Metrics.register_source metrics ~node ~name:"fs.cache" (fun () ->
      Metrics.of_counter_table (Fs.cache_stats server.s_fs) ());
  Metrics.register_source metrics ~node ~name:"txn" (fun () ->
      Metrics.of_counter_table (Txn.stats server.s_ts) ());
  Metrics.register_source metrics ~node ~name:"locks" (fun () ->
      Metrics.of_counter_table (Lm.stats (Txn.lock_manager server.s_ts)) ())

let create ?(config = default_config) sim =
  let cfg = config in
  if cfg.nservers < 1 then invalid_arg "Cluster.create: nservers";
  let tracer = Trace.create sim in
  let metrics = Metrics.create () in
  let net =
    Net.create ~seed:cfg.seed ~latency_ms:cfg.net_latency_ms
      ~bandwidth_bytes_per_ms:cfg.net_bandwidth_bytes_per_ms ~tracer sim
  in
  Metrics.register_source metrics ~name:"net" (fun () ->
      Metrics.of_counter_table (Net.stats net) ());
  let naming_file = ref None in
  let servers =
    Array.init cfg.nservers (fun sidx ->
        let server, nf = build_server ~cfg ~sim ~net ~tracer sidx in
        if sidx = 0 then naming_file := nf;
        register_server_metrics metrics server;
        server)
  in
  let t =
    {
      cfg;
      t_sim = sim;
      t_net = net;
      t_servers = servers;
      t_ns = Ns.create ();
      t_naming_file = Option.get !naming_file;
      t_rr = 0;
      t_clients = [];
      t_tracer = tracer;
      t_metrics = metrics;
    }
  in
  if cfg.remote then Array.iter (serve_rpc t) t.t_servers;
  t

let run ?config ?queue f =
  let sim = Sim.create ?queue () in
  let result = ref None in
  let _ =
    Sim.spawn ~name:"main" sim (fun () ->
        let t = create ?config sim in
        result := Some (f sim t))
  in
  (* Periodic background processes (cache flushers, agents) keep the
     event queue non-empty forever; stop as soon as the driver
     function has returned. *)
  while !result = None && Sim.step sim do
    ()
  done;
  match !result with
  | Some r -> r
  | None -> failwith "Cluster.run: simulation stalled before completion"

(* ------------------------------------------------------------------ *)
(* Clients                                                             *)
(* ------------------------------------------------------------------ *)

let add_client t ~name =
  let node = Net.add_node t.t_net name in
  let fs_conn = make_fs_conn t ~from:node in
  let txn_conn = make_txn_conn t ~from:node in
  let files =
    File_agent.create
      ~config:
        {
          File_agent.default_config with
          File_agent.cache_blocks = t.cfg.client_cache_blocks;
          flush_interval_ms = t.cfg.client_flush_interval_ms;
          fetch_window = t.cfg.client_fetch_window;
          max_fetch_blocks = t.cfg.client_max_fetch_blocks;
          read_ahead_blocks = t.cfg.client_read_ahead_blocks;
        }
      ~tracer:t.t_tracer ~sim:t.t_sim ~conn:fs_conn ()
  in
  let devices = Device_agent.create t.t_sim in
  let txn_agent =
    Transaction_agent.create
      ~on_commit:(fun ~file -> File_agent.invalidate_file files ~file)
      ~tracer:t.t_tracer ~sim:t.t_sim ~fs_conn ~txn_conn ()
  in
  Metrics.register_source t.t_metrics ~node:name ~name:"agent" (fun () ->
      Metrics.of_counter_table (File_agent.stats files) ());
  Metrics.register_source t.t_metrics ~node:name ~name:"agent.cache" (fun () ->
      Metrics.of_counter_table (File_agent.cache_stats files) ());
  Metrics.register_source t.t_metrics ~node:name ~name:"agent.names" (fun () ->
      Metrics.of_counter_table (File_agent.name_cache_stats files) ());
  let env = Process_env.create ~devices ~files ~transactions:txn_agent () in
  let client =
    {
      c_name = name;
      c_node = node;
      c_env = env;
      c_files = files;
      c_devices = devices;
      c_txn = txn_agent;
      c_fs_conn = fs_conn;
      c_tracer = t.t_tracer;
    }
  in
  t.t_clients <- client :: t.t_clients;
  client

let client_name c = c.c_name
let client_node c = c.c_node
let env c = c.c_env
let file_agent c = c.c_files
let device_agent c = c.c_devices
let transaction_agent c = c.c_txn
let fs_conn c = c.c_fs_conn

(* Convenience wrappers. Each opens a root ["client"] span, so a whole
   user-level operation renders as one causal tree: client -> agent ->
   net -> service -> block service -> disk. *)

let client_span c op attrs f =
  Trace.maybe (Some c.c_tracer) ~service:"client" ~op
    ~attrs:(fun () -> ("client", Trace.Str c.c_name) :: attrs ())
    f

let path_attr path () = [ ("path", Trace.Str path) ]
let desc_attr d () = [ ("desc", Trace.Int d) ]

let mkdir c path =
  client_span c "mkdir" (path_attr path) (fun () -> c.c_fs_conn.Conn.mkdir path)

let create_file c path =
  client_span c "create" (path_attr path) (fun () ->
      File_agent.create_file c.c_files ~path)

let open_file c path =
  client_span c "open" (path_attr path) (fun () ->
      File_agent.open_file c.c_files ~path)

let write c d data =
  client_span c "write"
    (fun () -> [ ("desc", Trace.Int d); ("len", Trace.Int (Bytes.length data)) ])
    (fun () -> File_agent.write c.c_files d data)

let read c d n =
  client_span c "read"
    (fun () -> [ ("desc", Trace.Int d); ("len", Trace.Int n) ])
    (fun () -> File_agent.read c.c_files d n)

let pwrite c d ~off ~data =
  client_span c "pwrite"
    (fun () ->
      [ ("desc", Trace.Int d); ("off", Trace.Int off);
        ("len", Trace.Int (Bytes.length data)) ])
    (fun () -> File_agent.pwrite c.c_files d ~off ~data)

let pread c d ~off ~len =
  client_span c "pread"
    (fun () ->
      [ ("desc", Trace.Int d); ("off", Trace.Int off); ("len", Trace.Int len) ])
    (fun () -> File_agent.pread c.c_files d ~off ~len)

let lseek c d whence = File_agent.lseek c.c_files d whence

let close c d =
  client_span c "close" (desc_attr d) (fun () -> File_agent.close c.c_files d)

let delete c path =
  client_span c "delete" (path_attr path) (fun () ->
      File_agent.delete c.c_files ~path)

let with_transaction_impl c f =
  let td = Transaction_agent.tbegin c.c_txn in
  match f c.c_txn td with
  | result ->
    Transaction_agent.tend c.c_txn td;
    result
  | exception e ->
    (* Best-effort abort: the service may already have aborted the
       transaction (lock timeout), lost the handle, or be unreachable.
       Anything else — Sim.Killed above all — must propagate. *)
    (try Transaction_agent.tabort c.c_txn td
     with
    | Txn.Aborted _ | Txn.No_such_transaction _
    | Transaction_agent.Bad_transaction _
    | Remote_failure _ | Net.Rpc.Timeout _ ->
      ());
    raise e

let with_transaction c f =
  client_span c "transaction"
    (fun () -> [])
    (fun () -> with_transaction_impl c f)

(* ------------------------------------------------------------------ *)
(* Faults and recovery                                                 *)
(* ------------------------------------------------------------------ *)

let crash_client t client =
  ignore (Net.crash_node t.t_net client.c_node);
  File_agent.crash client.c_files

let crash_server t =
  L.warn (fun m -> m "server crash at t=%.1fms" (Sim.now t.t_sim));
  Array.fold_left
    (fun lost server ->
      ignore (Net.crash_node t.t_net server.s_node);
      (match server.s_port with Some port -> Net.Rpc.stop port | None -> ());
      server.s_port <- None;
      Hashtbl.reset server.s_txn_handles;
      Txn.shutdown server.s_ts;
      lost + Fs.crash server.s_fs)
    0 t.t_servers

let recover_server t =
  (* Re-attach every disk service of every server: stable-storage
     recovery, bitmap restore, extent array rebuild; then replay each
     server's intentions list. *)
  let reports =
    Array.map
      (fun server ->
        server.s_bss <-
          build_block_services ~cfg:t.cfg ~sidx:server.s_index ~tracer:t.t_tracer
            ~disks:server.s_disks ~stable_disks:server.s_stable_disks;
        Array.iter Block.attach server.s_bss;
        server.s_fs <-
          Fs.create ~config:(fs_config t.cfg) ~tracer:t.t_tracer
            ~disks:server.s_bss ();
        let ts, report =
          Txn.recover_service
            ~config:{ Txn.default_config with Txn.lock_config = t.cfg.lock_config }
            ~tracer:t.t_tracer ~fs:server.s_fs ~log_region:server.s_log_region ()
        in
        server.s_ts <- ts;
        report)
      t.t_servers
  in
  (* Reload the namespace from its reserved file on server 0. *)
  let fs0 = t.t_servers.(0).s_fs in
  let size = Fs.file_size fs0 t.t_naming_file in
  let data = Fs.pread fs0 t.t_naming_file ~off:0 ~len:size in
  t.t_ns <- deserialise_namespace data;
  if t.cfg.remote then Array.iter (serve_rpc t) t.t_servers;
  L.info (fun m -> m "server recovered at t=%.1fms" (Sim.now t.t_sim));
  {
    Txn.redone_transactions =
      Array.to_list reports
      |> List.concat_map (fun r -> r.Txn.redone_transactions);
    discarded_transactions =
      Array.to_list reports
      |> List.concat_map (fun r -> r.Txn.discarded_transactions);
  }

let set_message_loss t rate = Net.set_loss_rate t.t_net rate
let set_message_duplication t rate = Net.set_duplicate_rate t.t_net rate

(* ------------------------------------------------------------------ *)
(* Integrity checking                                                  *)
(* ------------------------------------------------------------------ *)

(* Every file id bound somewhere in the namespace, as global ids. *)
let bound_files t =
  let acc = ref [] in
  let rec walk path =
    List.iter
      (fun (name, kind) ->
        let p = (if path = "/" then "" else path) ^ "/" ^ name in
        match kind with
        | Ns.Directory -> walk p
        | Ns.File -> acc := (Ns.resolve_path t.t_ns p).Ns.id :: !acc
        | Ns.Device -> ())
      (Ns.list_dir t.t_ns path)
  in
  walk "/";
  !acc

let fsck t =
  let by_server = Array.make (Array.length t.t_servers) [] in
  List.iter
    (fun g ->
      let s = gid_server g in
      by_server.(s) <- Fs.id_of_int (gid_local g) :: by_server.(s))
    (bound_files t);
  by_server.(0) <- t.t_naming_file :: by_server.(0);
  let reports =
    Array.mapi
      (fun sidx server ->
        let log_frag, log_len = server.s_log_region in
        Rhodos_file.Fsck.check server.s_fs
          ~files:(List.sort_uniq compare by_server.(sidx))
          ~regions:[ ("intentions-list", 0, log_frag, log_len) ]
          ())
      t.t_servers
  in
  (* Merge: per-server (disk, frag) pairs are disambiguated by
     offsetting the disk index with the server index. *)
  let shift sidx (disk, frag) = ((sidx * 1000) + disk, frag) in
  let shift3 sidx (disk, frag, o) = ((sidx * 1000) + disk, frag, o) in
  let shift4 sidx (disk, frag, a, b) = ((sidx * 1000) + disk, frag, a, b) in
  Array.to_list reports
  |> List.mapi (fun sidx r -> (sidx, r))
  |> List.fold_left
       (fun (acc : Rhodos_file.Fsck.report) (sidx, (r : Rhodos_file.Fsck.report)) ->
         {
           Rhodos_file.Fsck.files_checked = acc.files_checked + r.files_checked;
           fragments_allocated = acc.fragments_allocated + r.fragments_allocated;
           fragments_reachable = acc.fragments_reachable + r.fragments_reachable;
           leaked = acc.leaked @ List.map (shift sidx) r.leaked;
           phantom = acc.phantom @ List.map (shift3 sidx) r.phantom;
           double_allocated =
             acc.double_allocated @ List.map (shift4 sidx) r.double_allocated;
           unreadable_fits = acc.unreadable_fits @ r.unreadable_fits;
         })
       {
         Rhodos_file.Fsck.files_checked = 0;
         fragments_allocated = 0;
         fragments_reachable = 0;
         leaked = [];
         phantom = [];
         double_allocated = [];
         unreadable_fits = [];
       }
