(* rhodos_cli — drive a simulated RHODOS cluster from a command script.

   A tiny line-oriented language exercises the whole public API, so
   the facility can be explored without writing OCaml:

     dune exec bin/rhodos_cli.exe -- run --eval "
       mkdir /data
       create /data/greeting hello-world
       read /data/greeting
       stat /data/greeting
       txn-update /data/greeting atomic-new-value
       crash-server
       recover-server
       read /data/greeting"

   or from a file: dune exec bin/rhodos_cli.exe -- run --script ops.rsh
   Commands:
     mkdir <path>                   create a directory (and parents)
     create <path> [content]       create a file, optionally with content
     write <path> <content>        overwrite a file's content
     append <path> <content>       append
     read <path>                   print content
     stat <path>                   print size/extents/attributes
     ls <path>                     list a directory
     delete <path>                 delete a file
     txn-update <path> <content>   overwrite atomically in a transaction
     txn-abort-demo <path> <junk>  start an update then abort it
     loss <rate> | dup <rate>      message loss / duplication rates
     crash-client                  crash the client workstation
     crash-server                  crash the server node
     recover-server                re-attach disks, replay intentions
     time                          print the simulated clock
     stats                         disk/cache counters so far *)

module Cluster = Rhodos.Cluster
module Sim = Rhodos_sim.Sim
module Disk = Rhodos_disk.Disk
module Block = Rhodos_block.Block_service
module Fs = Rhodos_file.File_service
module Fit = Rhodos_file.Fit
module Ta = Rhodos_agent.Transaction_agent
module Fa = Rhodos_agent.File_agent
module Ns = Rhodos_naming.Name_service
module Txn = Rhodos_txn.Txn_service

let split_words line =
  String.split_on_char ' ' (String.trim line) |> List.filter (fun w -> w <> "")

let read_whole c path =
  let d = Cluster.open_file c path in
  let size = Fa.size (Cluster.file_agent c) d in
  let data = Cluster.pread c d ~off:0 ~len:size in
  Cluster.close c d;
  data

let write_whole c path data =
  let d =
    try Cluster.open_file c path
    with Ns.Name_not_found _ | Ns.Unresolvable _ -> Cluster.create_file c path
  in
  Cluster.pwrite c d ~off:0 ~data;
  Fa.flush (Cluster.file_agent c);
  Cluster.close c d

let execute sim t c line =
  let fail fmt = Printf.ksprintf (fun s -> Printf.printf "error: %s\n" s) fmt in
  match split_words line with
  | [] -> ()
  | cmd :: _ when cmd.[0] = '#' -> ()
  | [ "mkdir"; path ] ->
    Cluster.mkdir c path;
    Printf.printf "mkdir %s\n" path
  | "create" :: path :: rest ->
    let d = Cluster.create_file c path in
    (match rest with
    | [] -> ()
    | content ->
      Cluster.write c d (Bytes.of_string (String.concat " " content)));
    Fa.flush (Cluster.file_agent c);
    Cluster.close c d;
    Printf.printf "created %s\n" path
  | "write" :: path :: content ->
    write_whole c path (Bytes.of_string (String.concat " " content));
    Printf.printf "wrote %s\n" path
  | "append" :: path :: content ->
    let d = Cluster.open_file c path in
    ignore (Cluster.lseek c d (`End 0));
    Cluster.write c d (Bytes.of_string (String.concat " " content));
    Fa.flush (Cluster.file_agent c);
    Cluster.close c d;
    Printf.printf "appended to %s\n" path
  | [ "read"; path ] ->
    Printf.printf "%s: %S\n" path (Bytes.to_string (read_whole c path))
  | [ "stat"; path ] ->
    let d = Cluster.open_file c path in
    let a = Fa.get_attribute (Cluster.file_agent c) d in
    Cluster.close c d;
    Printf.printf
      "%s: size=%d refcount=%d runs=%d service=%s locking=%s created=%.1fms\n" path
      a.Fit.size a.Fit.ref_count (Fit.run_count a)
      (match a.Fit.service_type with Fit.Basic -> "basic" | Fit.Transaction -> "transaction")
      (match a.Fit.locking_level with
      | Fit.Record_level -> "record"
      | Fit.Page_level -> "page"
      | Fit.File_level -> "file")
      a.Fit.created_at
  | [ "ls"; path ] ->
    Ns.list_dir (Cluster.naming t) path
    |> List.iter (fun (name, kind) ->
           Printf.printf "  %s%s\n" name
             (match kind with Ns.Directory -> "/" | Ns.File -> "" | Ns.Device -> "@"))
  | [ "delete"; path ] ->
    Cluster.delete c path;
    Printf.printf "deleted %s\n" path
  | "txn-update" :: path :: content ->
    Cluster.with_transaction c (fun ta td ->
        let fd = Ta.topen ta td ~path in
        Ta.tpwrite ta td fd ~off:0 ~data:(Bytes.of_string (String.concat " " content)));
    Printf.printf "transaction committed on %s\n" path
  | "txn-abort-demo" :: path :: content -> (
    try
      Cluster.with_transaction c (fun ta td ->
          let fd = Ta.topen ta td ~path in
          Ta.tpwrite ta td fd ~off:0
            ~data:(Bytes.of_string (String.concat " " content));
          failwith "deliberate abort")
    with Failure _ -> Printf.printf "transaction aborted, %s untouched\n" path)
  | [ "loss"; rate ] ->
    Cluster.set_message_loss t (float_of_string rate);
    Printf.printf "message loss rate = %s\n" rate
  | [ "dup"; rate ] ->
    Cluster.set_message_duplication t (float_of_string rate);
    Printf.printf "message duplication rate = %s\n" rate
  | [ "crash-client" ] ->
    let lost = Cluster.crash_client t c in
    Printf.printf "client crashed; %d dirty cached blocks lost\n" lost
  | [ "crash-server" ] ->
    let lost = Cluster.crash_server t in
    Printf.printf "server crashed; %d dirty cached blocks lost\n" lost
  | [ "recover-server" ] ->
    let report = Cluster.recover_server t in
    Printf.printf "server recovered; %d txns redone, %d discarded\n"
      (List.length report.Txn.redone_transactions)
      (List.length report.Txn.discarded_transactions)
  | [ "time" ] -> Printf.printf "simulated time: %.2f ms\n" (Sim.now sim)
  | [ "stats" ] ->
    Array.iteri
      (fun i disk ->
        Format.printf "  disk %d: %a@." i Disk.pp_stats (Disk.stats disk))
      (Cluster.disks t);
    let fa = Cluster.file_agent c in
    Printf.printf "  agent cache: %s\n"
      (Rhodos_util.Stats.Counter.to_list (Fa.cache_stats fa)
      |> List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v)
      |> String.concat " ")
  | cmd :: _ -> fail "unknown command %S (see --help)" cmd

let run_session ~ndisks ~remote ~latency ~seed ~commands =
  let config =
    {
      Cluster.default_config with
      Cluster.ndisks;
      remote;
      net_latency_ms = latency;
      seed;
    }
  in
  Cluster.run ~config (fun sim t ->
      let c = Cluster.add_client t ~name:"cli" in
      List.iter
        (fun line ->
          try execute sim t c line with
          | Fs.File_not_found _ -> Printf.printf "error: no such file\n"
          | Ns.Name_not_found p -> Printf.printf "error: no such name %s\n" p
          | Ns.Already_bound p -> Printf.printf "error: already exists %s\n" p
          | Txn.Aborted { reason; _ } -> Printf.printf "error: aborted (%s)\n" reason
          | Failure m -> Printf.printf "error: %s\n" m)
        commands;
      Printf.printf "done (simulated %.2f ms)\n" (Sim.now sim))

(* ------------------------------------------------------------------ *)
(* trace: export the E0 cold-read request as a span tree / Chrome JSON *)
(* ------------------------------------------------------------------ *)

module Trace = Rhodos_obs.Trace
module Export = Rhodos_obs.Export

(* One cold 64 KiB read (the E0 walk): create /walk, write it out,
   drop every cache, then trace the re-read. Returns the finished
   spans and the simulation digest. [traced = false] runs the same
   workload with no subscriber attached (the zero-cost path). *)
let cold_read_spans ~traced () =
  Cluster.run (fun sim t ->
      let ws = Cluster.add_client t ~name:"ws" in
      let payload = Bytes.init (64 * 1024) (fun i -> Char.chr (i mod 251)) in
      let d = Cluster.create_file ws "/walk" in
      Cluster.pwrite ws d ~off:0 ~data:payload;
      Fa.flush (Cluster.file_agent ws);
      Fs.drop_caches (Cluster.file_service t);
      ignore (Fa.crash (Cluster.file_agent ws));
      let d = Cluster.open_file ws "/walk" in
      let tracer = Cluster.tracer t in
      let collector = if traced then Some (Trace.collect tracer) else None in
      let got = Cluster.pread ws d ~off:0 ~len:(64 * 1024) in
      Option.iter (Trace.stop tracer) collector;
      if not (Bytes.equal got payload) then failwith "trace: cold read corrupt";
      Cluster.close ws d;
      let spans =
        match collector with Some c -> Trace.spans c | None -> []
      in
      (spans, Sim.run_digest sim))

(* The E0 layering the paper's Fig. 1 promises: the client call goes
   agent -> RPC -> file service -> block service, and the cold 64 KiB
   contiguous file costs exactly two physical disk references. *)
let check_layering spans =
  let by_service s = List.filter (fun sp -> sp.Trace.service = s) spans in
  let find_span id = List.find_opt (fun sp -> sp.Trace.id = id) spans in
  let rec ancestors sp =
    match sp.Trace.parent with
    | None -> []
    | Some p -> (
      match find_span p with
      | None -> []
      | Some parent -> parent.Trace.service :: ancestors parent)
  in
  let expect cond msg = if not cond then failwith ("trace check: " ^ msg) in
  let roots = List.filter (fun sp -> sp.Trace.parent = None) spans in
  expect
    (List.length roots = 1
    && (List.hd roots).Trace.service = "client"
    && (List.hd roots).Trace.op = "pread")
    "expected a single client.pread root span";
  expect (by_service "file_agent" <> []) "no file_agent span";
  expect (by_service "net" <> []) "no net span";
  expect (by_service "file_service" <> []) "no file_service span";
  expect (by_service "block_service" <> []) "no block_service span";
  let disks = by_service "disk" in
  expect
    (List.length disks = 2)
    (Printf.sprintf "expected 2 physical disk references, got %d"
       (List.length disks));
  List.iter
    (fun sp ->
      expect
        (ancestors sp
        = [ "block_service"; "file_service"; "net"; "file_agent"; "client" ])
        "disk span not under block_service -> file_service -> net -> \
         file_agent -> client")
    disks

let trace_action tree check =
  Rhodos_util.Logging.setup_from_env ();
  let spans, digest = cold_read_spans ~traced:true () in
  if check then begin
    check_layering spans;
    let spans2, digest2 = cold_read_spans ~traced:true () in
    let _, untraced_digest = cold_read_spans ~traced:false () in
    if Export.chrome_json spans <> Export.chrome_json spans2 then
      failwith "trace check: two traced runs exported different JSON";
    if digest <> digest2 then
      failwith "trace check: two traced runs diverged (digest)";
    if digest <> untraced_digest then
      failwith "trace check: tracing perturbed the simulation digest";
    Printf.printf
      "trace check passed: %d spans, 2 disk references, deterministic export, \
       digest unchanged by tracing\n"
      (List.length spans)
  end
  else if tree then begin
    print_string (Export.span_tree spans);
    print_string (Export.latency_breakdown ~title:"per-layer breakdown" spans)
  end
  else print_string (Export.chrome_json spans)

(* ------------------------------------------------------------------ *)
(* profile / top: host-time and allocation self-profiling              *)
(* ------------------------------------------------------------------ *)

module Profiler = Rhodos_obs.Profiler

(* The standard profiling workload — the P0/E15 shape: a cold 512 KiB
   sequential scan in 8 KiB reads through the whole stack, with the
   profiler armed around the scan. [traced] also collects spans so
   --chrome can overlay the profiler's counter tracks on the trace. *)
let profiled_scan ~traced () =
  Cluster.run (fun sim t ->
      let ws = Cluster.add_client t ~name:"ws" in
      let payload = Bytes.init (512 * 1024) (fun i -> Char.chr (i mod 251)) in
      let d = Cluster.create_file ws "/scan" in
      Cluster.pwrite ws d ~off:0 ~data:payload;
      Fa.flush (Cluster.file_agent ws);
      Fs.drop_caches (Cluster.file_service t);
      Fa.invalidate_file (Cluster.file_agent ws)
        ~file:(Fa.descriptor_file (Cluster.file_agent ws) d);
      ignore (Cluster.lseek ws d (`Set 0));
      let tracer = Cluster.tracer t in
      let collector = if traced then Some (Trace.collect tracer) else None in
      let (), report =
        Profiler.profile ~interval:64 sim (fun () ->
            for _ = 1 to 64 do
              ignore (Cluster.read ws d (8 * 1024))
            done)
      in
      Option.iter (Trace.stop tracer) collector;
      let spans = match collector with Some c -> Trace.spans c | None -> [] in
      (report, spans))

let profile_action collapsed chrome =
  Rhodos_util.Logging.setup_from_env ();
  let report, spans = profiled_scan ~traced:chrome () in
  if chrome then
    print_string
      (Export.chrome_json ~counters:(Profiler.counter_series report) spans)
  else if collapsed then print_string (Profiler.collapsed report)
  else print_string (Profiler.report_table report)

let top_action limit =
  Rhodos_util.Logging.setup_from_env ();
  let report, _ = profiled_scan ~traced:false () in
  print_string (Profiler.top_table ~limit report)

(* ------------------------------------------------------------------ *)
(* Cmdliner wiring                                                     *)
(* ------------------------------------------------------------------ *)

open Cmdliner

let ndisks =
  Arg.(value & opt int 1 & info [ "ndisks" ] ~docv:"N" ~doc:"Number of data disks.")

let remote =
  Arg.(
    value & opt bool true
    & info [ "remote" ] ~docv:"BOOL"
        ~doc:"Put the services behind the simulated network (true) or co-locate (false).")

let latency =
  Arg.(
    value & opt float 0.5
    & info [ "latency" ] ~docv:"MS" ~doc:"One-way LAN latency in milliseconds.")

let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let script =
  Arg.(
    value & opt (some file) None
    & info [ "script" ] ~docv:"FILE" ~doc:"Command script, one command per line.")

let eval_arg =
  Arg.(
    value & opt (some string) None
    & info [ "e"; "eval" ] ~docv:"COMMANDS" ~doc:"Inline commands, newline separated.")

let run_cmd =
  let doc = "run a command script against a fresh simulated cluster" in
  let action ndisks remote latency seed script eval =
    Rhodos_util.Logging.setup_from_env ();
    let commands =
      match (script, eval) with
      | Some file, _ ->
        let ic = open_in file in
        let rec lines acc =
          match input_line ic with
          | line -> lines (line :: acc)
          | exception End_of_file ->
            close_in ic;
            List.rev acc
        in
        lines []
      | None, Some text -> String.split_on_char '\n' text
      | None, None ->
        Printf.eprintf "nothing to do: pass --script FILE or --eval COMMANDS\n";
        exit 2
    in
    run_session ~ndisks ~remote ~latency ~seed ~commands
  in
  Cmd.v
    (Cmd.info "run" ~doc)
    Term.(const action $ ndisks $ remote $ latency $ seed $ script $ eval_arg)

let info_cmd =
  let doc = "print the simulated hardware configuration" in
  let action () =
    let g = Disk.default_geometry in
    Printf.printf "disk geometry: %d cylinders x %d heads x %d sectors x %d B\n"
      g.Disk.cylinders g.Disk.heads g.Disk.sectors_per_track g.Disk.sector_bytes;
    Printf.printf "  rpm=%.0f seek=%.1f+%.3f*d ms, track switch %.1f ms\n" g.Disk.rpm
      g.Disk.seek_start_ms g.Disk.seek_per_cyl_ms g.Disk.track_switch_ms;
    Printf.printf "fragment %d B, block %d B (%d fragments)\n" Block.fragment_bytes
      Block.block_bytes Block.fragments_per_block
  in
  Cmd.v (Cmd.info "info" ~doc) Term.(const action $ const ())

let trace_cmd =
  let doc =
    "trace one cold 64 KiB read across every layer; emits Chrome trace_event \
     JSON (default), a plain-text span tree (--tree), or self-checks the \
     layering and determinism (--check)"
  in
  let tree =
    Arg.(value & flag & info [ "tree" ] ~doc:"Print the span tree instead of JSON.")
  in
  let check =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Validate the E0 layering (client through agent, RPC, file \
             service, block service, to exactly 2 disk references), that two \
             traced runs export byte-identical JSON, and that tracing leaves \
             the simulation digest unchanged.")
  in
  Cmd.v (Cmd.info "trace" ~doc) Term.(const trace_action $ tree $ check)

let profile_cmd =
  let doc =
    "profile the engine itself on a cold 512 KiB scan: host time per \
     process/service, allocations per event, queue waits and scheduler \
     overhead. Emits a summary table (default), flamegraph folded stacks \
     (--collapsed), or Chrome JSON with profiler counter tracks (--chrome)"
  in
  let collapsed =
    Arg.(
      value & flag
      & info [ "collapsed" ]
          ~doc:
            "Print flamegraph folded stacks (host ns per process, plus the \
             sim-core scheduler residual) instead of the table.")
  in
  let chrome =
    Arg.(
      value & flag
      & info [ "chrome" ]
          ~doc:
            "Print Chrome trace_event JSON of the traced scan with the \
             profiler's counter series (queue length, events/sec, Gc words) \
             as \"C\" tracks.")
  in
  Cmd.v (Cmd.info "profile" ~doc) Term.(const profile_action $ collapsed $ chrome)

let top_cmd =
  let doc = "hottest processes by host time on the standard profiling scan" in
  let limit =
    Arg.(
      value & opt int 10
      & info [ "limit" ] ~docv:"N" ~doc:"How many processes to show.")
  in
  Cmd.v (Cmd.info "top" ~doc) Term.(const top_action $ limit)

let () =
  let doc = "drive a simulated RHODOS distributed file facility" in
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "rhodos_cli" ~doc)
          [ run_cmd; info_cmd; trace_cmd; profile_cmd; top_cmd ]))
