(* Repo lint driver: [rhodos_lint DIR...] lints every .ml under the
   given directories (default: lib) and exits nonzero on any
   violation. Directories named "bench" get the Bench profile (tables
   print directly, executables carry no .mli, and every exp_*.ml must
   register a JSON emitter); everything else is linted as Library.
   Wired to the @lint alias, which is part of the tier-1 runtest
   path. *)

module Lint = Rhodos_analysis.Lint

let profile_of dir =
  if Filename.basename dir = "bench" then Lint.Bench else Lint.Library

let () =
  let dirs =
    match Array.to_list Sys.argv with [] | [ _ ] -> [ "lib" ] | _ :: d -> d
  in
  List.iter
    (fun d ->
      if not (Sys.file_exists d && Sys.is_directory d) then begin
        Format.eprintf "lint: no such directory: %s@." d;
        exit 2
      end)
    dirs;
  let violations =
    List.concat_map (fun d -> Lint.lint_dir ~profile:(profile_of d) d) dirs
  in
  List.iter
    (fun v -> Format.printf "%a@." Lint.pp_violation v)
    violations;
  match violations with
  | [] ->
    Format.printf "lint: %s clean@." (String.concat " " dirs)
  | vs ->
    Format.eprintf "lint: %d violation(s)@." (List.length vs);
    exit 1
