(* Repo lint driver: [rhodos_lint DIR...] lints every .ml under the
   given directories (default: lib) and exits nonzero on any
   violation. Wired to the @lint alias, which is part of the tier-1
   runtest path. *)

module Lint = Rhodos_analysis.Lint

let () =
  let dirs =
    match Array.to_list Sys.argv with [] | [ _ ] -> [ "lib" ] | _ :: d -> d
  in
  List.iter
    (fun d ->
      if not (Sys.file_exists d && Sys.is_directory d) then begin
        Format.eprintf "lint: no such directory: %s@." d;
        exit 2
      end)
    dirs;
  let violations = List.concat_map Lint.lint_dir dirs in
  List.iter
    (fun v -> Format.printf "%a@." Lint.pp_violation v)
    violations;
  match violations with
  | [] ->
    Format.printf "lint: %s clean@." (String.concat " " dirs)
  | vs ->
    Format.eprintf "lint: %d violation(s)@." (List.length vs);
    exit 1
