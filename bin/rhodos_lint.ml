(* Repo lint driver.

   [rhodos_lint DIR...] — token-based text lint over every .ml under
   the given directories (default: lib). Directories named "bench"
   get the Bench profile. Wired to the @lint alias on the tier-1
   runtest path.

   [rhodos_lint static [--json] [--baseline FILE] [--write-baseline
   FILE] [--self-test DIR] [DIR...]] — the AST-based whole-program
   analysis (call graph, may-block fixpoint, lock-order graph,
   wire-protocol coverage, AST ports of the token rules; text-engine
   fallback for unparseable files). Exit 0 when clean against the
   baseline (if any), 1 on new findings, 2 on usage/IO errors. Wired
   to the @staticcheck alias, part of @ci. *)

module Lint = Rhodos_analysis.Lint
module Static = Rhodos_static.Static
module Finding = Rhodos_static.Finding

let profile_of dir =
  if Filename.basename dir = "bench" then Lint.Bench else Lint.Library

let require_dir d =
  if not (Sys.file_exists d && Sys.is_directory d) then begin
    Format.eprintf "lint: no such directory: %s@." d;
    exit 2
  end

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let usage_static () =
  Format.eprintf
    "usage: rhodos_lint static [--json] [--baseline FILE] [--write-baseline \
     FILE] [--self-test DIR] [--max-ms N] [DIR...]@.";
  exit 2

let run_static args =
  let json = ref false in
  let baseline = ref None in
  let write_baseline = ref None in
  let self_test = ref None in
  let max_ms = ref None in
  let dirs = ref [] in
  let rec parse = function
    | [] -> ()
    | "--json" :: rest ->
      json := true;
      parse rest
    | "--baseline" :: f :: rest ->
      baseline := Some f;
      parse rest
    | "--write-baseline" :: f :: rest ->
      write_baseline := Some f;
      parse rest
    | "--self-test" :: d :: rest ->
      self_test := Some d;
      parse rest
    | "--max-ms" :: n :: rest -> (
      match float_of_string_opt n with
      | Some v -> max_ms := Some v; parse rest
      | None -> usage_static ())
    | a :: _ when String.length a > 0 && a.[0] = '-' -> usage_static ()
    | d :: rest ->
      dirs := !dirs @ [ d ];
      parse rest
  in
  parse args;
  match !self_test with
  | Some dir ->
    require_dir dir;
    let ok, lines = Static.self_test ~dir in
    List.iter (fun l -> Format.printf "%s@." l) lines;
    if ok then Format.printf "staticcheck: self-test passed@."
    else begin
      Format.eprintf "staticcheck: self-test FAILED@.";
      exit 1
    end
  | None ->
    let dirs = match !dirs with [] -> [ "lib" ] | ds -> ds in
    List.iter require_dir dirs;
    (* Sys.time here, not in the library: bin/ is outside the
       host-clock-hygiene lint's jurisdiction, and the per-pass cost
       numbers are a CLI concern anyway. *)
    let report = Static.analyze ~clock:Sys.time ~dirs () in
    let baseline_keys =
      match !baseline with
      | None -> []
      | Some f ->
        if Sys.file_exists f then Finding.baseline_of_string (read_file f)
        else begin
          Format.eprintf "staticcheck: no such baseline: %s@." f;
          exit 2
        end
    in
    (match !write_baseline with
    | None -> ()
    | Some f ->
      let oc = open_out_bin f in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          output_string oc
            (Finding.baseline_to_string
               (List.map Finding.key report.Static.findings))));
    let fresh, stale = Static.against_baseline report ~baseline:baseline_keys in
    if !json then
      print_string
        (Finding.list_to_json
           ~suppressed:report.Static.suppressed
           ~parse_failures:
             (List.map
                (fun (p, e) -> Printf.sprintf "%s: %s" p e)
                report.Static.parse_failures)
           ~timings:report.Static.timings
           ~extras:
             [
               ( "protection_map",
                 Rhodos_static.Racepass.locations_to_json
                   report.Static.race_locations );
             ]
           fresh)
    else begin
      List.iter (fun f -> Format.printf "%a@." Finding.pp f) fresh;
      List.iter
        (fun (p, e) ->
          Format.eprintf "staticcheck: parse failure (text fallback): %s: %s@."
            p e)
        report.Static.parse_failures;
      (* A readable added/removed diff against the committed baseline:
         the sweep deviating must say exactly how. *)
      if fresh <> [] || stale <> [] then begin
        Format.eprintf "staticcheck: baseline diff (%d added, %d removed):@."
          (List.length fresh) (List.length stale);
        List.iter
          (fun f ->
            Format.eprintf "  + %s (%s:%d)@." (Finding.key f) f.Finding.file
              f.Finding.line)
          fresh;
        List.iter
          (fun k -> Format.eprintf "  - %s (stale: no longer found)@." k)
          stale
      end
    end;
    (* Wall-time budget: a generous ceiling so a later pass cannot
       silently blow up CI. *)
    let total_ms =
      1000. *. List.fold_left (fun a (_, s) -> a +. s) 0. report.Static.timings
    in
    (match !max_ms with
    | Some budget when total_ms > budget ->
      Format.eprintf
        "staticcheck: static suite took %.0f ms, over the %.0f ms budget \
         (per-pass: %s)@."
        total_ms budget
        (String.concat ", "
           (List.map
              (fun (p, s) -> Printf.sprintf "%s %.0fms" p (1000. *. s))
              report.Static.timings));
      exit 1
    | _ -> ());
    if fresh = [] then begin
      if not !json then
        Format.printf
          "staticcheck: %s clean (%d finding(s) baselined, %d suppressed)@."
          (String.concat " " dirs)
          (List.length baseline_keys)
          report.Static.suppressed
    end
    else begin
      Format.eprintf "staticcheck: %d new finding(s)@." (List.length fresh);
      exit 1
    end

let run_text dirs =
  let dirs = match dirs with [] -> [ "lib" ] | ds -> ds in
  List.iter require_dir dirs;
  let violations =
    List.concat_map (fun d -> Lint.lint_dir ~profile:(profile_of d) d) dirs
  in
  List.iter (fun v -> Format.printf "%a@." Lint.pp_violation v) violations;
  match violations with
  | [] -> Format.printf "lint: %s clean@." (String.concat " " dirs)
  | vs ->
    Format.eprintf "lint: %d violation(s)@." (List.length vs);
    exit 1

let () =
  match Array.to_list Sys.argv with
  | _ :: "static" :: rest -> run_static rest
  | [] | [ _ ] -> run_text []
  | _ :: dirs -> run_text dirs
