(* Correctness-analysis driver for the @analyze alias. Runs the
   Table 1 model check, the seeded deadlock-detector scenarios and
   the simulator determinism sanitizer; prints each report and exits
   nonzero if any analysis fails. *)

module Sim = Rhodos_sim.Sim
module Analysis = Rhodos_analysis
module Counter = Rhodos_util.Stats.Counter

let failures = ref 0

let section name ok detail =
  Format.printf "@[<v>== %s: %s@ %s@]@.@." name
    (if ok then "ok" else "FAIL")
    detail;
  if not ok then incr failures

(* ------------------------------------------------------------------ *)
(* 1. Table 1 model check                                              *)
(* ------------------------------------------------------------------ *)

let run_table_check () =
  let checks = Analysis.Table_check.run () in
  section "table-1 model check"
    (Analysis.Table_check.all_ok checks)
    (Format.asprintf "%a" Analysis.Table_check.pp_report checks)

(* ------------------------------------------------------------------ *)
(* 2. Deadlock detector: seeded cycle and seeded false abort           *)
(* ------------------------------------------------------------------ *)

let pp_outcome fmt (o : Analysis.Scenarios.deadlock_outcome) =
  Format.fprintf fmt
    "true_deadlocks=%d false_aborts=%d cycle=%s aborted=[%s]"
    o.true_deadlocks o.false_aborts
    (match o.cycle with
    | None -> "none"
    | Some c -> String.concat "->" (List.map string_of_int c))
    (String.concat ";" (List.map string_of_int o.aborted))

let run_deadlock_scenarios () =
  let o = Analysis.Scenarios.two_cycle () in
  section "deadlock: seeded 2-cycle"
    (o.true_deadlocks >= 1
    && (match o.cycle with Some (_ :: _ :: _) -> true | _ -> false)
    && o.aborted <> [])
    (Format.asprintf "%a" pp_outcome o);
  let o = Analysis.Scenarios.long_transaction_false_abort () in
  section "deadlock: long transaction, no cycle"
    (o.false_aborts >= 1 && o.true_deadlocks = 0 && o.aborted = [ 1 ])
    (Format.asprintf "%a" pp_outcome o)

(* ------------------------------------------------------------------ *)
(* 3. Determinism sanitizer                                            *)
(* ------------------------------------------------------------------ *)

(* An order-independent workload: clients bank into distinct cells,
   with sleeps, mailbox traffic and same-time wakeups. Must survive
   perturbed tie-breaking with identical observations. *)
let run_determinism () =
  let cells = 8 in
  let results = Array.make cells 0 in
  let setup sim =
    Array.fill results 0 cells 0;
    let mb = Sim.Mailbox.create sim in
    ignore
      (Sim.spawn ~name:"server" sim (fun () ->
           for _ = 1 to cells do
             let i = Sim.Mailbox.recv mb in
             results.(i) <- results.(i) + (i * i)
           done));
    for i = 0 to cells - 1 do
      ignore
        (Sim.spawn ~name:"client" sim (fun () ->
             Sim.sleep sim 1.;
             Sim.Mailbox.send mb i;
             Sim.sleep sim 2.;
             results.(i) <- results.(i) + 1))
    done
  in
  let observe _sim =
    String.concat ","
      (Array.to_list (Array.map string_of_int results))
  in
  let report = Analysis.Determinism.run_twice_compare ~setup ~observe () in
  section "determinism sanitizer"
    (Analysis.Determinism.ok report)
    (Format.asprintf "%a" Analysis.Determinism.pp_report report)

(* ------------------------------------------------------------------ *)

let () =
  run_table_check ();
  run_deadlock_scenarios ();
  run_determinism ();
  if !failures > 0 then begin
    Format.eprintf "analyze: %d analysis(es) failed@." !failures;
    exit 1
  end
  else Format.printf "analyze: all analyses passed@."
