(* Correctness-analysis driver.

   With no arguments (the @analyze alias): Table 1 model check, seeded
   deadlock-detector scenarios, determinism sanitizer (now also
   explorer-backed: N explored schedules on top of FIFO/FIFO/LIFO).

   Subcommands:
     explore [--json]        bounded model checking of the seed
                             scenarios + crash-point sweeps + the
                             lost-update negative control (@explore)
     sanitize [--json]       race/protocol sanitizers across explored
                             schedules of every shipped scenario, plus
                             the seeded-race negative control, which
                             both the happens-before and the lockset
                             pass must catch with a deterministically
                             replayable schedule (@sanitize)
     replay <scenario> <schedule>
                             deterministically re-execute one schedule
                             ("0,2,1" or "[]") and print the
                             interleaving trace *)

module Sim = Rhodos_sim.Sim
module Analysis = Rhodos_analysis
module Explore = Rhodos_analysis.Explore
module Scenarios = Rhodos_analysis.Scenarios
module Counter = Rhodos_util.Stats.Counter

let failures = ref 0

let section name ok detail =
  Format.printf "@[<v>== %s: %s@ %s@]@.@." name
    (if ok then "ok" else "FAIL")
    detail;
  if not ok then incr failures

(* ------------------------------------------------------------------ *)
(* 1. Table 1 model check                                              *)
(* ------------------------------------------------------------------ *)

let run_table_check () =
  let checks = Analysis.Table_check.run () in
  section "table-1 model check"
    (Analysis.Table_check.all_ok checks)
    (Format.asprintf "%a" Analysis.Table_check.pp_report checks)

(* ------------------------------------------------------------------ *)
(* 2. Deadlock detector: seeded cycle and seeded false abort           *)
(* ------------------------------------------------------------------ *)

let pp_outcome fmt (o : Analysis.Scenarios.deadlock_outcome) =
  Format.fprintf fmt
    "true_deadlocks=%d false_aborts=%d cycle=%s aborted=[%s]"
    o.true_deadlocks o.false_aborts
    (match o.cycle with
    | None -> "none"
    | Some c -> String.concat "->" (List.map string_of_int c))
    (String.concat ";" (List.map string_of_int o.aborted))

let run_deadlock_scenarios () =
  let o = Analysis.Scenarios.two_cycle () in
  section "deadlock: seeded 2-cycle"
    (o.true_deadlocks >= 1
    && (match o.cycle with Some (_ :: _ :: _) -> true | _ -> false)
    && o.aborted <> [])
    (Format.asprintf "%a" pp_outcome o);
  let o = Analysis.Scenarios.long_transaction_false_abort () in
  section "deadlock: long transaction, no cycle"
    (o.false_aborts >= 1 && o.true_deadlocks = 0 && o.aborted = [ 1 ])
    (Format.asprintf "%a" pp_outcome o)

(* ------------------------------------------------------------------ *)
(* 3. Determinism sanitizer                                            *)
(* ------------------------------------------------------------------ *)

(* An order-independent workload: clients bank into distinct cells,
   with sleeps, mailbox traffic and same-time wakeups. Must survive
   perturbed tie-breaking — and 32 explorer-enumerated interleavings —
   with identical observations. *)
let run_determinism () =
  let cells = 8 in
  let results = Array.make cells 0 in
  let setup sim =
    Array.fill results 0 cells 0;
    let mb = Sim.Mailbox.create sim in
    ignore
      (Sim.spawn ~name:"server" sim (fun () ->
           for _ = 1 to cells do
             let i = Sim.Mailbox.recv mb in
             results.(i) <- results.(i) + (i * i)
           done));
    for i = 0 to cells - 1 do
      ignore
        (Sim.spawn ~name:"client" sim (fun () ->
             Sim.sleep sim 1.;
             Sim.Mailbox.send mb i;
             Sim.sleep sim 2.;
             results.(i) <- results.(i) + 1))
    done
  in
  let observe _sim =
    String.concat ","
      (Array.to_list (Array.map string_of_int results))
  in
  let report =
    Analysis.Determinism.run_twice_compare ~schedules:32 ~setup ~observe ()
  in
  section "determinism sanitizer"
    (Analysis.Determinism.ok report)
    (Format.asprintf "%a" Analysis.Determinism.pp_report report)

(* ------------------------------------------------------------------ *)
(* explore subcommand                                                  *)
(* ------------------------------------------------------------------ *)

let json_escape = Buffer.create 64

let jstr s =
  Buffer.clear json_escape;
  Buffer.add_char json_escape '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string json_escape "\\\""
      | '\\' -> Buffer.add_string json_escape "\\\\"
      | '\n' -> Buffer.add_string json_escape "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string json_escape (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char json_escape c)
    s;
  Buffer.add_char json_escape '"';
  Buffer.contents json_escape

let jints l =
  Printf.sprintf "[%s]" (String.concat "," (List.map string_of_int l))

let report_json (r : Explore.report) =
  let violation =
    match r.Explore.r_violation with
    | None -> "null"
    | Some v ->
      Printf.sprintf
        "{\"invariant\": %s, \"detail\": %s, \"schedule\": %s, \"found\": %s}"
        (jstr v.Explore.v_invariant) (jstr v.Explore.v_detail)
        (jints v.Explore.v_schedule) (jints v.Explore.v_found)
  in
  Printf.sprintf
    "{\"name\": %s, \"runs\": %d, \"max_choice_points\": %d, \"pruned\": %d, \
     \"exhausted\": %b, \"walks\": %d, \"violation\": %s}"
    (jstr r.Explore.r_scenario) r.Explore.r_runs r.Explore.r_max_choice_points
    r.Explore.r_pruned r.Explore.r_exhausted r.Explore.r_walks violation

let sweep_json name (s : Explore.sweep) =
  Printf.sprintf "{\"name\": %s, \"points\": %d, \"failures\": %d}" (jstr name)
    s.Explore.s_points
    (List.length s.Explore.s_failures)

let run_explore ~json () =
  let reports =
    List.map
      (fun (name, bounds, sc) ->
        let r = Explore.explore ~bounds sc in
        let ok = r.Explore.r_violation = None && r.Explore.r_exhausted in
        if not json then
          section ("explore: " ^ name) ok
            (Format.asprintf "%a" Explore.pp_report r)
        else if not ok then incr failures;
        r)
      (Scenarios.explorer_scenarios ())
  in
  let sweeps =
    [
      ("cache-crash-sweep", Scenarios.cache_crash_sweep ());
      ("agent-crash-sweep", Scenarios.agent_crash_sweep ());
    ]
  in
  List.iter
    (fun (name, (s : Explore.sweep)) ->
      let ok = s.Explore.s_failures = [] in
      if not json then
        section ("crash sweep: " ^ name) ok
          (Printf.sprintf "%d injection points, %d failures%s"
             s.Explore.s_points
             (List.length s.Explore.s_failures)
             (String.concat ""
                (List.map
                   (fun (k, inv, d) ->
                     Printf.sprintf "\n  point %d: %s: %s" k inv d)
                   s.Explore.s_failures)))
      else if not ok then incr failures)
    sweeps;
  (* Negative control: the deliberately reintroduced PR-3 lost-update
     bug must be caught, with a minimized schedule that still violates
     on deterministic replay. *)
  let buggy = Scenarios.lost_update_model ~fixed:false () in
  let bug_report = Explore.explore ~bounds:Explore.default_bounds buggy in
  let caught, replayable, cex =
    match bug_report.Explore.r_violation with
    | None -> (false, false, [])
    | Some v ->
      let _, viols, _ = Explore.replay buggy v.Explore.v_schedule in
      (true, viols <> [], v.Explore.v_schedule)
  in
  let fixed = Scenarios.lost_update_model ~fixed:true () in
  let fixed_report = Explore.explore ~bounds:Explore.default_bounds fixed in
  let fixed_ok =
    fixed_report.Explore.r_violation = None && fixed_report.Explore.r_exhausted
  in
  if not json then begin
    section "negative control: lost-update-bug caught"
      (caught && replayable)
      (Format.asprintf "%a" Explore.pp_report bug_report);
    section "lost-update-fixed survives exploration" fixed_ok
      (Format.asprintf "%a" Explore.pp_report fixed_report)
  end
  else begin
    if not (caught && replayable) then incr failures;
    if not fixed_ok then incr failures;
    Printf.printf
      "{\n\
      \  \"scenarios\": [\n    %s\n  ],\n\
      \  \"sweeps\": [\n    %s\n  ],\n\
      \  \"negative_control\": {\"caught\": %b, \"replayable\": %b, \
       \"schedule\": %s},\n\
      \  \"fixed_model\": %s\n\
       }\n"
      (String.concat ",\n    " (List.map report_json reports))
      (String.concat ",\n    "
         (List.map (fun (n, s) -> sweep_json n s) sweeps))
      caught replayable (jints cex)
      (report_json fixed_report)
  end

(* ------------------------------------------------------------------ *)
(* sanitize subcommand                                                 *)
(* ------------------------------------------------------------------ *)

(* Every shipped scenario carries its sanitizer in the world record,
   and sanitizer findings ride the explorer's violation channel — so
   "explore it and demand zero violations" runs the race and protocol
   passes across every explored interleaving, not just FIFO. *)
let run_sanitize ~json () =
  let small =
    { Explore.default_bounds with max_runs = 200; random_walks = 16 }
  in
  let shipped =
    List.map (fun (n, b, sc) -> (n, b, sc)) (Scenarios.explorer_scenarios ())
    @ [
        ("lost-update-fixed", small, Scenarios.lost_update_model ~fixed:true ());
        ("seeded-race-locked", small, Scenarios.seeded_race_model ~locked:true ());
      ]
  in
  let reports =
    List.map
      (fun (name, bounds, sc) ->
        let r = Explore.explore ~bounds sc in
        let ok = r.Explore.r_violation = None in
        if not json then
          section ("sanitize: " ^ name) ok
            (Format.asprintf "%a" Explore.pp_report r)
        else if not ok then incr failures;
        r)
      shipped
  in
  (* Negative control: the seeded lock-free RMW race. Both passes must
     fire already under FIFO (the sanitizer reports the unordered step,
     not a corrupted final state), exploration must catch it, and its
     minimized schedule must still violate on deterministic replay. *)
  let buggy () = Scenarios.seeded_race_model ~locked:false () in
  let _, fifo_viols = Explore.run_schedule (buggy ()) [] in
  let has kind = List.mem_assoc ("sanitizer:" ^ kind) fifo_viols in
  let both_passes = has "data-race" && has "lockset" in
  let bug_report = Explore.explore ~bounds:small (buggy ()) in
  let caught, replayable, cex =
    match bug_report.Explore.r_violation with
    | None -> (false, false, [])
    | Some v ->
      let _, viols, _ = Explore.replay (buggy ()) v.Explore.v_schedule in
      ( true,
        List.exists
          (fun (inv, _) -> String.length inv > 10
                           && String.sub inv 0 10 = "sanitizer:")
          viols,
        v.Explore.v_schedule )
  in
  if not json then begin
    section "negative control: seeded-race-bug caught by both passes"
      (caught && both_passes && replayable)
      (Printf.sprintf "FIFO findings: %s\n%s"
         (String.concat "; " (List.map fst fifo_viols))
         (Format.asprintf "%a" Explore.pp_report bug_report))
  end
  else begin
    if not (caught && both_passes && replayable) then incr failures;
    Printf.printf
      "{\n\
      \  \"scenarios\": [\n    %s\n  ],\n\
      \  \"negative_control\": {\"caught\": %b, \"both_passes\": %b, \
       \"replayable\": %b, \"schedule\": %s, \"fifo_findings\": [%s]}\n\
       }\n"
      (String.concat ",\n    " (List.map report_json reports))
      caught both_passes replayable (jints cex)
      (String.concat ", " (List.map (fun (inv, _) -> jstr inv) fifo_viols))
  end

(* ------------------------------------------------------------------ *)
(* replay subcommand                                                   *)
(* ------------------------------------------------------------------ *)

let run_replay name schedule_str =
  match Scenarios.find_scenario name with
  | None ->
    Format.eprintf "replay: unknown scenario %S@." name;
    Format.eprintf "known: %s@."
      (String.concat ", "
         (List.map (fun (n, _, _) -> n) (Scenarios.explorer_scenarios ())
         @ [
             "lost-update-fixed"; "lost-update-bug"; "seeded-race-bug";
             "seeded-race-locked";
           ]));
    exit 2
  | Some sc ->
    let schedule =
      match Explore.schedule_of_string schedule_str with
      | s -> s
      | exception Failure msg ->
        Format.eprintf "replay: %s@." msg;
        exit 2
    in
    let _run, violations, rendered = Explore.replay sc schedule in
    print_string rendered;
    (match violations with
    | [] -> Format.printf "violations: none@."
    | vs ->
      List.iter
        (fun (inv, detail) -> Format.printf "violation: %s: %s@." inv detail)
        vs)

(* ------------------------------------------------------------------ *)

let () =
  match Array.to_list Sys.argv with
  | _ :: "explore" :: rest ->
    let json = List.mem "--json" rest in
    run_explore ~json ();
    if !failures > 0 then begin
      if not json then
        Format.eprintf "explore: %d analysis(es) failed@." !failures;
      exit 1
    end
    else if not json then Format.printf "explore: all analyses passed@."
  | _ :: "sanitize" :: rest ->
    let json = List.mem "--json" rest in
    run_sanitize ~json ();
    if !failures > 0 then begin
      if not json then
        Format.eprintf "sanitize: %d analysis(es) failed@." !failures;
      exit 1
    end
    else if not json then Format.printf "sanitize: all analyses passed@."
  | [ _; "replay"; name; schedule ] -> run_replay name schedule
  | _ :: "replay" :: _ ->
    Format.eprintf "usage: rhodos_analyze replay <scenario> <schedule>@.";
    exit 2
  | _ ->
    run_table_check ();
    run_deadlock_scenarios ();
    run_determinism ();
    if !failures > 0 then begin
      Format.eprintf "analyze: %d analysis(es) failed@." !failures;
      exit 1
    end
    else Format.printf "analyze: all analyses passed@."
